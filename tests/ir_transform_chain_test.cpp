// Section 2's transformation chain, as code:
//   (2.1) raw accumulation  — multi-assignment, output + anti deps
//   --expand_accumulation--> (2.2) single-assignment, broadcasts
//   --pipeline------------->  (2.3) the uniform model with D of (2.4).
#include <gtest/gtest.h>

#include "analysis/trace.hpp"
#include "ir/kernels.hpp"
#include "ir/pipelining.hpp"
#include "support/error.hpp"

namespace bitlevel::ir {
namespace {

TEST(TransformChainTest, RawProgramHasAllThreeDependenceKinds) {
  const Program raw = kernels::matmul_raw_program(3);
  // Not single-assignment: the strict tracer refuses it.
  EXPECT_THROW(analysis::trace_dependences(raw), PreconditionError);

  const analysis::FullTrace all = analysis::trace_all_dependences(raw);
  EXPECT_FALSE(all.flow.empty());
  EXPECT_FALSE(all.anti.empty());
  EXPECT_FALSE(all.output.empty());
  // z(j1, j2) is rewritten along j3: every output (and anti) dependence
  // runs forward along the accumulation axis.
  for (const auto& inst : all.output) {
    EXPECT_EQ(inst.array, "z");
    const math::IntVec d = inst.distance();
    EXPECT_EQ(d[0], 0);
    EXPECT_EQ(d[1], 0);
    EXPECT_GE(d[2], 1);
  }
  // u^2 elements, u writes each: u^2 * C(u, 2) ordered write pairs.
  EXPECT_EQ(all.output.size(), 9u * 3u);
  for (const auto& inst : all.anti) {
    EXPECT_EQ(inst.array, "z");
    EXPECT_GE(inst.distance()[2], 1);
  }
}

TEST(TransformChainTest, ExpandAccumulationDerives22) {
  const Program raw = kernels::matmul_raw_program(4);
  const auto single = expand_accumulation(raw);
  ASSERT_TRUE(single.has_value());

  // Structurally identical to the hand-written (2.2).
  const Program expected = kernels::matmul_broadcast_program(4);
  ASSERT_EQ(single->statements.size(), 1u);
  const Statement& got = single->statements.front();
  const Statement& want = expected.statements.front();
  EXPECT_EQ(got.write.subscript, want.write.subscript);
  ASSERT_EQ(got.reads.size(), want.reads.size());
  for (std::size_t i = 0; i < got.reads.size(); ++i) {
    EXPECT_EQ(got.reads[i].array, want.reads[i].array);
    EXPECT_EQ(got.reads[i].subscript, want.reads[i].subscript);
  }

  // Single-assignment now; no anti or output dependences remain.
  EXPECT_NO_THROW(analysis::trace_dependences(*single));
  const analysis::FullTrace all = analysis::trace_all_dependences(*single);
  EXPECT_TRUE(all.anti.empty());
  EXPECT_TRUE(all.output.empty());
  EXPECT_FALSE(all.flow.empty());
}

TEST(TransformChainTest, FullChainReaches23) {
  const Program raw = kernels::matmul_raw_program(3);
  const auto single = expand_accumulation(raw);
  ASSERT_TRUE(single.has_value());
  const auto model = pipeline_accumulation_program(*single);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(*model->h1, (math::IntVec{0, 1, 0}));
  EXPECT_EQ(*model->h2, (math::IntVec{1, 0, 0}));
  EXPECT_EQ(*model->h3, (math::IntVec{0, 0, 1}));
}

TEST(TransformChainTest, RejectsNonAccumulationShapes) {
  // Full-rank write: nothing to expand.
  const AffineMap id = AffineMap::identity(2);
  Program full_rank{IndexSet::cube(2, 3), {{{"z", id}, {{"z", id}}, "z(j) = f(z(j))"}}};
  EXPECT_FALSE(expand_accumulation(full_rank).has_value());

  // Write and accumulation read with different subscripts.
  Program mismatched{IndexSet::cube(2, 3),
                     {{{"z", AffineMap::select(2, {0})},
                       {{"z", AffineMap::select(2, {1})}},
                       "z(j1) = f(z(j2))"}}};
  EXPECT_FALSE(expand_accumulation(mismatched).has_value());
}

TEST(TraceAllTest, AntiDependenceDistance) {
  // a(j) reads a(j+1) before iteration j+1 overwrites it: anti with
  // distance [1].
  Program prog{IndexSet({1}, {4}),
               {{{"a", AffineMap::identity(1)},
                 {{"a", AffineMap::translate({1})}},
                 "a(j) = f(a(j+1))"}}};
  const auto all = analysis::trace_all_dependences(prog);
  ASSERT_FALSE(all.anti.empty());
  for (const auto& inst : all.anti) EXPECT_EQ(inst.distance(), (math::IntVec{1}));
  EXPECT_TRUE(all.output.empty());
  EXPECT_TRUE(all.flow.empty());  // reads happen before the writes
}

}  // namespace
}  // namespace bitlevel::ir
