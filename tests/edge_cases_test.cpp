// Edge cases across the stack: degenerate matrices, empty systems,
// boundary sizes, overflow guards — behaviours a downstream user will
// eventually hit.
#include <gtest/gtest.h>

#include "analysis/trace.hpp"
#include "core/expansion.hpp"
#include "core/verify.hpp"
#include "ir/kernels.hpp"
#include "mapping/explore.hpp"
#include "mapping/schedule.hpp"
#include "math/bareiss.hpp"
#include "math/diophantine.hpp"
#include "math/hnf.hpp"
#include "math/snf.hpp"
#include "support/error.hpp"

namespace bitlevel {
namespace {

TEST(EdgeTest, NormalFormsOnDegenerateMatrices) {
  // All-zero matrix: rank 0, kernel = everything.
  const math::IntMat zero(2, 3);
  const auto hf = math::hermite_normal_form(zero);
  EXPECT_EQ(hf.rank, 0u);
  EXPECT_TRUE(math::is_unimodular(hf.u));
  EXPECT_EQ(math::null_space_basis(zero).cols(), 3u);
  const auto sf = math::smith_normal_form(zero);
  EXPECT_EQ(sf.rank, 0u);

  // Single entry.
  const auto hf1 = math::hermite_normal_form(math::IntMat{{-6}});
  EXPECT_EQ(hf1.rank, 1u);
  EXPECT_EQ(hf1.h.at(0, 0), 6);  // pivot normalized positive
}

TEST(EdgeTest, DiophantineWithNoEquations) {
  // Zero constraints: everything solves, kernel is full-dimensional.
  const math::IntMat a(0, 3);
  const auto sol = math::solve_diophantine(a, {});
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->kernel.cols(), 3u);
  const auto pts = math::enumerate_solutions_in_box(a, {}, {0, 0, 0}, {1, 1, 1});
  EXPECT_EQ(pts.size(), 8u);
}

TEST(EdgeTest, IndexSetSizeOverflowGuard) {
  const ir::IndexSet huge(math::IntVec(8, 1), math::IntVec(8, 1 << 20));
  EXPECT_THROW(huge.size(), OverflowError);
}

TEST(EdgeTest, SinglePointDomain) {
  const ir::IndexSet point({2, 3}, {2, 3});
  EXPECT_EQ(point.size(), 1);
  int visits = 0;
  point.for_each([&](const math::IntVec&) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 1);
  // Execution time of any schedule over a single point is 1.
  EXPECT_EQ(mapping::execution_time({5, -7}, point), 1);
}

TEST(EdgeTest, ExecutionTimeUsesAbsoluteCoefficients) {
  const ir::IndexSet j({1, 1}, {4, 3});
  EXPECT_EQ(mapping::execution_time({-2, 1}, j), 2 * 3 + 2 + 1);
}

TEST(EdgeTest, ExpansionAtMinimalSizes) {
  // p = 1: the grid is a single AND cell; u = 1: a single iteration.
  const auto s = core::expand(ir::kernels::matmul(1), 1, core::Expansion::kII);
  EXPECT_EQ(s.domain.size(), 1);
  const auto report = core::verify_expansion(ir::kernels::matmul(1), 1, core::Expansion::kII);
  EXPECT_TRUE(report.ok()) << report.match.to_string();
}

TEST(EdgeTest, ExploreSeedDirectionsAreUsed) {
  // Without the seeded p-scaled direction the 3-D chain's Fig-4-style
  // space mapping is not in the pool; with it the explorer finds a
  // design whose projections include the seed.
  const math::Int p = 2;
  const auto s = core::expand(ir::kernels::scalar_chain(1, 4, 1), p, core::Expansion::kII);
  mapping::ExploreOptions options;
  options.max_direction_sets = 6;
  options.seed_directions = {{1, -p, 0}};
  const auto result = mapping::explore_designs(
      s.domain, s.deps, mapping::InterconnectionPrimitives::mesh2d_diag(),
      mapping::DesignObjective::kTime, options);
  bool seed_used = false;
  for (const auto& d : result.designs) {
    for (std::size_t c = 0; c < d.projections.cols(); ++c) {
      seed_used = seed_used || d.projections.col(c) == math::IntVec{1, -p, 0};
    }
  }
  EXPECT_TRUE(seed_used);
}

TEST(EdgeTest, ProcessorCountOnCollapsedMapping) {
  // S = 0 maps everything to one PE.
  const math::IntMat s(1, 2);
  EXPECT_EQ(mapping::processor_count(s, ir::IndexSet::cube(2, 4)), 1);
}

TEST(EdgeTest, ValidityOutOfRangeCoordinateThrows) {
  const auto r = ir::ValidityRegion::coord_eq(5, 1);
  EXPECT_THROW(r.contains({1, 2}), PreconditionError);
}

TEST(RenderingTest, StructureAndSummaries) {
  const auto s = core::expand(ir::kernels::matmul(2), 2, core::Expansion::kI);
  const std::string text = s.to_string();
  EXPECT_NE(text.find("Expansion I"), std::string::npos);
  EXPECT_NE(text.find("matmul"), std::string::npos);
  EXPECT_NE(core::to_string(core::Expansion::kII).find("final-sum"), std::string::npos);

  const auto hist = core::compute_load_histogram(s);
  EXPECT_NE(hist.to_string().find("inputs:"), std::string::npos);

  const ir::AffineMap m = ir::AffineMap::translate({1, -2});
  EXPECT_NE(m.to_string().find("b = [1, -2]"), std::string::npos);
}

TEST(RenderingTest, AnalysisSummaries) {
  const auto trace =
      analysis::trace_dependences(ir::kernels::matmul(2).access_program());
  const auto summary = analysis::DependenceSummary::from_instances(trace);
  const std::string text = summary.to_string();
  EXPECT_NE(text.find("sites"), std::string::npos);

  analysis::MatchReport report;
  report.ok = false;
  report.missing.push_back("at [1] dist [1]");
  EXPECT_NE(report.to_string().find("MISMATCH"), std::string::npos);
  EXPECT_NE(report.to_string().find("missing"), std::string::npos);
}

TEST(RenderingTest, ExploreWireObjectiveAndCandidateToString) {
  const auto triplet = ir::kernels::matmul(3).triplet();
  mapping::ExploreOptions options;
  options.max_direction_sets = 8;
  const auto result = mapping::explore_designs(triplet.domain, triplet.deps,
                                               mapping::InterconnectionPrimitives::mesh2d(),
                                               mapping::DesignObjective::kWire, options);
  ASSERT_FALSE(result.designs.empty());
  // Wire objective: the front design uses the shortest wires.
  for (const auto& d : result.designs) {
    EXPECT_GE(d.max_wire, result.designs.front().max_wire);
  }
  EXPECT_NE(result.designs.front().to_string().find("projections"), std::string::npos);
}

}  // namespace
}  // namespace bitlevel
