// End-to-end integration: kernel -> Theorem 3.1 expansion -> automatic
// design exploration -> cycle-accurate simulation -> numeric check,
// across kernels, expansions and multiple explored designs (not just
// the published matmul mappings).
#include <gtest/gtest.h>

#include "arch/bit_array.hpp"
#include "core/expansion.hpp"
#include "core/workload.hpp"
#include "ir/kernels.hpp"
#include "mapping/explore.hpp"

namespace bitlevel {
namespace {

using core::Expansion;

struct Case {
  std::string name;
  ir::WordLevelModel model;
  math::Int p;
  Expansion expansion;
};

std::vector<Case> make_cases() {
  return {
      {"scalar_expII", ir::kernels::scalar_chain(1, 5, 1), 4, Expansion::kII},
      {"scalar_expI", ir::kernels::scalar_chain(1, 4, 1), 5, Expansion::kI},
      {"conv_expII", ir::kernels::convolution1d(4, 3), 4, Expansion::kII},
      {"conv_expI", ir::kernels::convolution1d(4, 3), 6, Expansion::kI},
      {"matvec_expII", ir::kernels::matvec(3, 3), 4, Expansion::kII},
  };
}

class PipelineIntegrationTest : public ::testing::TestWithParam<Case> {};

TEST_P(PipelineIntegrationTest, ExploredDesignsComputeCorrectly) {
  const Case& c = GetParam();
  const auto s = core::expand(c.model, c.p, c.expansion);

  mapping::ExploreOptions options;
  options.max_direction_sets = 16;
  options.schedule_bound = 3;
  options.keep_per_space = 1;
  const auto found = mapping::explore_designs(
      s.domain, s.deps, mapping::InterconnectionPrimitives::mesh2d_diag(),
      mapping::DesignObjective::kTime, options);
  ASSERT_FALSE(found.designs.empty()) << c.name;

  const core::Workload w = core::make_safe_workload(c.model, c.p, c.expansion, 123);
  const auto reference = core::evaluate_word_reference(c.model, w.x_fn(), w.y_fn());

  // Run the three best designs — different space mappings, same answers.
  for (std::size_t i = 0; i < found.designs.size() && i < 3; ++i) {
    const auto& design = found.designs[i];
    const arch::BitLevelArray array(s, design.t,
                                    mapping::InterconnectionPrimitives::mesh2d_diag());
    const auto run = array.run(w.x_fn(), w.y_fn());
    ASSERT_FALSE(run.z.empty()) << c.name << " design " << i;
    for (const auto& [j, v] : run.z) {
      EXPECT_EQ(v, reference.at(j)) << c.name << " design " << i << " at "
                                    << math::to_string(j);
    }
    EXPECT_EQ(run.stats.cycles, design.total_time) << c.name << " design " << i;
    EXPECT_EQ(run.stats.pe_count, design.processors) << c.name << " design " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, PipelineIntegrationTest, ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.name;
                         });

TEST(WorkloadTest, RespectsPipeliningInvariants) {
  const auto m = ir::kernels::matmul(3);
  const auto w = core::make_pipelined_workload(m, 100, 5);
  m.domain.for_each([&](const math::IntVec& j) {
    const math::IntVec up1 = math::sub(j, *m.h1);
    if (m.domain.contains(up1)) {
      EXPECT_EQ(w.x.at(j), w.x.at(up1));
    }
    const math::IntVec up2 = math::sub(j, *m.h2);
    if (m.domain.contains(up2)) {
      EXPECT_EQ(w.y.at(j), w.y.at(up2));
    }
    return true;
  });
}

TEST(WorkloadTest, ExternalOperandsAreFree) {
  // matvec's y (the coefficients) is external: values may differ at
  // every point, and at least one pair should for a nontrivial bound.
  const auto m = ir::kernels::matvec(4, 4);
  const auto w = core::make_pipelined_workload(m, 1000, 6);
  std::set<std::uint64_t> distinct;
  for (const auto& [j, v] : w.y) distinct.insert(v);
  EXPECT_GT(distinct.size(), 4u);
}

}  // namespace
}  // namespace bitlevel
