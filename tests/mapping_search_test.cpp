// Exhaustive schedule search (Theorem 4.5's optimality claim, E8): with
// the space mapping S of (4.2) fixed, no feasible integer schedule with
// bounded coefficients beats Pi = [1, 1, 1, 2, 1].
#include <gtest/gtest.h>

#include <algorithm>

#include "core/expansion.hpp"
#include "ir/kernels.hpp"
#include "mapping/explore.hpp"
#include "mapping/search.hpp"
#include "support/error.hpp"

namespace bitlevel {
namespace {

using mapping::InterconnectionPrimitives;
using mapping::ScheduleSearchOptions;

TEST(ScheduleSearchTest, WordLevelMatmulOptimum) {
  const auto triplet = ir::kernels::matmul(4).triplet();
  const math::IntMat s{{1, 0, 0}, {0, 1, 0}};
  ScheduleSearchOptions options;
  options.coefficient_bound = 2;
  const auto result = mapping::search_schedules(triplet.domain, triplet.deps, s,
                                                InterconnectionPrimitives::mesh2d(), options);
  ASSERT_FALSE(result.feasible.empty());
  // The classical schedule [1,1,1] achieves the optimum 3(u-1)+1.
  EXPECT_EQ(result.feasible.front().total_time, 3 * (4 - 1) + 1);
  EXPECT_EQ(result.feasible.front().pi, (math::IntVec{1, 1, 1}));
  EXPECT_EQ(result.examined, 125u);  // 5^3 candidates
}

TEST(ScheduleSearchTest, Theorem45BitLevelOptimum) {
  const math::Int u = 3, p = 2;
  const auto s = core::expand(ir::kernels::matmul(u), p, core::Expansion::kII);
  const math::IntMat space{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}};
  ScheduleSearchOptions options;
  options.coefficient_bound = 2;
  const auto result = mapping::search_schedules(s.domain, s.deps, space,
                                                InterconnectionPrimitives::fig4(p), options);
  ASSERT_FALSE(result.feasible.empty());
  const math::Int best = result.feasible.front().total_time;
  // Theorem 4.5: T of (4.2) is time optimal.
  EXPECT_EQ(best, 3 * (u - 1) + 3 * (p - 1) + 1);
  const math::IntVec paper_pi{1, 1, 1, 2, 1};
  bool paper_found = false;
  for (const auto& cand : result.feasible) {
    if (cand.pi == paper_pi) {
      paper_found = true;
      EXPECT_EQ(cand.total_time, best);
    }
    EXPECT_GE(cand.total_time, best);  // sorted, but assert anyway
  }
  EXPECT_TRUE(paper_found);
}

TEST(ScheduleSearchTest, KeepTruncates) {
  const auto triplet = ir::kernels::matmul(3).triplet();
  const math::IntMat s{{1, 0, 0}, {0, 1, 0}};
  ScheduleSearchOptions options;
  options.coefficient_bound = 2;
  options.keep = 3;
  const auto result = mapping::search_schedules(triplet.domain, triplet.deps, s,
                                                InterconnectionPrimitives::mesh2d(), options);
  EXPECT_LE(result.feasible.size(), 3u);
}

TEST(ScheduleSearchTest, RankedResultsByteIdenticalAcrossThreadCounts) {
  // The Π-odometer partition + chunk-order merge must reproduce the
  // serial ranking exactly: same candidates, same order, same counts.
  const math::Int u = 3, p = 2;
  const auto s = core::expand(ir::kernels::matmul(u), p, core::Expansion::kII);
  const math::IntMat space{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}};
  const auto prims = InterconnectionPrimitives::fig4(p);

  ScheduleSearchOptions options;
  options.coefficient_bound = 2;
  options.threads = 1;
  const auto reference = mapping::search_schedules(s.domain, s.deps, space, prims, options);
  ASSERT_FALSE(reference.feasible.empty());

  for (int threads : {2, 8}) {
    options.threads = threads;
    const auto result = mapping::search_schedules(s.domain, s.deps, space, prims, options);
    EXPECT_EQ(result.examined, reference.examined);
    ASSERT_EQ(result.feasible.size(), reference.feasible.size());
    for (std::size_t i = 0; i < result.feasible.size(); ++i) {
      EXPECT_EQ(result.feasible[i].pi, reference.feasible[i].pi) << "rank " << i;
      EXPECT_EQ(result.feasible[i].total_time, reference.feasible[i].total_time) << "rank " << i;
    }
  }
}

TEST(ScheduleSearchTest, KeepTruncationDeterministicAcrossThreadCounts) {
  const auto triplet = ir::kernels::matmul(3).triplet();
  const math::IntMat s{{1, 0, 0}, {0, 1, 0}};
  ScheduleSearchOptions options;
  options.coefficient_bound = 2;
  options.keep = 4;
  options.threads = 1;
  const auto reference = mapping::search_schedules(triplet.domain, triplet.deps, s,
                                                   InterconnectionPrimitives::mesh2d(), options);
  options.threads = 8;
  const auto parallel = mapping::search_schedules(triplet.domain, triplet.deps, s,
                                                  InterconnectionPrimitives::mesh2d(), options);
  ASSERT_EQ(parallel.feasible.size(), reference.feasible.size());
  for (std::size_t i = 0; i < parallel.feasible.size(); ++i) {
    EXPECT_EQ(parallel.feasible[i].pi, reference.feasible[i].pi);
    EXPECT_EQ(parallel.feasible[i].total_time, reference.feasible[i].total_time);
  }
}

TEST(ExploreTest, RankedDesignsByteIdenticalAcrossThreadCounts) {
  const auto triplet = ir::kernels::matmul(3).triplet();
  mapping::ExploreOptions options;
  options.max_direction_sets = 16;
  options.threads = 1;
  const auto reference =
      mapping::explore_designs(triplet.domain, triplet.deps,
                               InterconnectionPrimitives::mesh2d(),
                               mapping::DesignObjective::kTime, options);
  ASSERT_FALSE(reference.designs.empty());

  for (int threads : {2, 8}) {
    options.threads = threads;
    const auto result =
        mapping::explore_designs(triplet.domain, triplet.deps,
                                 InterconnectionPrimitives::mesh2d(),
                                 mapping::DesignObjective::kTime, options);
    EXPECT_EQ(result.spaces_tried, reference.spaces_tried);
    EXPECT_EQ(result.schedules_examined, reference.schedules_examined);
    ASSERT_EQ(result.designs.size(), reference.designs.size());
    for (std::size_t i = 0; i < result.designs.size(); ++i) {
      EXPECT_EQ(result.designs[i].t.matrix(), reference.designs[i].t.matrix()) << "rank " << i;
      EXPECT_EQ(result.designs[i].projections, reference.designs[i].projections) << "rank " << i;
      EXPECT_EQ(result.designs[i].total_time, reference.designs[i].total_time) << "rank " << i;
      EXPECT_EQ(result.designs[i].processors, reference.designs[i].processors) << "rank " << i;
      EXPECT_EQ(result.designs[i].max_wire, reference.designs[i].max_wire) << "rank " << i;
    }
  }
}

TEST(ScheduleSearchTest, SaturatedOdometerRefusesCleanly) {
  // (2b+1)^n overflowing size_t used to report a 2^62 sentinel as
  // "examined" and still start a sweep of that many positions — an
  // effective hang. A saturated space must instead return immediately:
  // saturated flag set, zero examined, nothing feasible.
  const auto triplet = ir::kernels::matmul(2).triplet();
  const math::IntMat s{{1, 0, 0}, {0, 1, 0}};
  ScheduleSearchOptions options;
  options.coefficient_bound = 2'000'000'000;  // radix 4e9: 3 digits overflow 64 bits
  const auto result = mapping::search_schedules(triplet.domain, triplet.deps, s,
                                                InterconnectionPrimitives::mesh2d(), options);
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.examined, 0u);
  EXPECT_TRUE(result.feasible.empty());
}

TEST(ScheduleSearchTest, UnsaturatedSearchReportsTrueCount) {
  const auto triplet = ir::kernels::matmul(2).triplet();
  const math::IntMat s{{1, 0, 0}, {0, 1, 0}};
  ScheduleSearchOptions options;
  options.coefficient_bound = 1;
  const auto result = mapping::search_schedules(triplet.domain, triplet.deps, s,
                                                InterconnectionPrimitives::mesh2d(), options);
  EXPECT_FALSE(result.saturated);
  EXPECT_EQ(result.examined, 27u);  // 3^3
}

TEST(ScheduleSearchTest, BudgetReturnsPartialPrefix) {
  // The iteration watchdog must stop after exactly max_examined
  // odometer positions and flag the result, mirroring the saturation
  // contract: a partial answer, never a hang.
  const auto triplet = ir::kernels::matmul(4).triplet();
  const math::IntMat s{{1, 0, 0}, {0, 1, 0}};
  ScheduleSearchOptions options;
  options.coefficient_bound = 2;
  options.threads = 1;
  const auto full = mapping::search_schedules(triplet.domain, triplet.deps, s,
                                              InterconnectionPrimitives::mesh2d(), options);
  ASSERT_EQ(full.examined, 125u);
  EXPECT_FALSE(full.budget_exhausted);

  options.max_examined = 40;
  const auto capped = mapping::search_schedules(triplet.domain, triplet.deps, s,
                                                InterconnectionPrimitives::mesh2d(), options);
  EXPECT_TRUE(capped.budget_exhausted);
  EXPECT_EQ(capped.examined, 40u);
  EXPECT_FALSE(capped.saturated);
  // The capped sweep visits a prefix of the full enumeration, so every
  // candidate it finds must also be in the full result.
  for (const auto& cand : capped.feasible) {
    const bool in_full = std::any_of(full.feasible.begin(), full.feasible.end(),
                                     [&](const auto& f) { return f.pi == cand.pi; });
    EXPECT_TRUE(in_full);
  }
}

TEST(ScheduleSearchTest, BudgetLargerThanSpaceIsNoOp) {
  const auto triplet = ir::kernels::matmul(3).triplet();
  const math::IntMat s{{1, 0, 0}, {0, 1, 0}};
  ScheduleSearchOptions options;
  options.coefficient_bound = 2;
  options.max_examined = 10'000;
  const auto result = mapping::search_schedules(triplet.domain, triplet.deps, s,
                                                InterconnectionPrimitives::mesh2d(), options);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.examined, 125u);
}

TEST(ScheduleSearchTest, BudgetedSweepDeterministicAcrossThreadCounts) {
  // The budget truncates the odometer itself, before partitioning, so
  // the enumerated prefix — and thus the ranked result — is the same
  // for every thread count.
  const math::Int u = 3, p = 2;
  const auto s = core::expand(ir::kernels::matmul(u), p, core::Expansion::kII);
  const math::IntMat space{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}};
  const auto prims = InterconnectionPrimitives::fig4(p);

  ScheduleSearchOptions options;
  options.coefficient_bound = 2;
  options.max_examined = 2000;
  options.threads = 1;
  const auto reference = mapping::search_schedules(s.domain, s.deps, space, prims, options);
  EXPECT_TRUE(reference.budget_exhausted);
  EXPECT_EQ(reference.examined, 2000u);

  for (int threads : {2, 8}) {
    options.threads = threads;
    const auto result = mapping::search_schedules(s.domain, s.deps, space, prims, options);
    EXPECT_EQ(result.budget_exhausted, reference.budget_exhausted);
    EXPECT_EQ(result.examined, reference.examined);
    ASSERT_EQ(result.feasible.size(), reference.feasible.size());
    for (std::size_t i = 0; i < result.feasible.size(); ++i) {
      EXPECT_EQ(result.feasible[i].pi, reference.feasible[i].pi) << "rank " << i;
    }
  }
}

TEST(ExploreTest, ScheduleBudgetPropagatesAndFlags) {
  const auto triplet = ir::kernels::matmul(3).triplet();
  mapping::ExploreOptions options;
  options.max_direction_sets = 16;
  options.schedule_budget = 10;  // 125-position spaces get cut short
  options.threads = 1;
  const auto reference =
      mapping::explore_designs(triplet.domain, triplet.deps, InterconnectionPrimitives::mesh2d(),
                               mapping::DesignObjective::kTime, options);
  EXPECT_TRUE(reference.budget_exhausted);
  EXPECT_EQ(reference.schedules_examined, reference.spaces_tried * 10);

  for (int threads : {2, 8}) {
    options.threads = threads;
    const auto result =
        mapping::explore_designs(triplet.domain, triplet.deps, InterconnectionPrimitives::mesh2d(),
                                 mapping::DesignObjective::kTime, options);
    EXPECT_TRUE(result.budget_exhausted);
    EXPECT_EQ(result.schedules_examined, reference.schedules_examined);
    ASSERT_EQ(result.designs.size(), reference.designs.size());
    for (std::size_t i = 0; i < result.designs.size(); ++i) {
      EXPECT_EQ(result.designs[i].t.matrix(), reference.designs[i].t.matrix()) << "rank " << i;
    }
  }
}

TEST(ScheduleSearchTest, InfeasibleWhenLinksMissing) {
  // A 1-D "array" with only a stationary link cannot pipeline anything.
  const auto triplet = ir::kernels::matmul(2).triplet();
  const math::IntMat s{{1, 0, 0}, {0, 1, 0}};
  const InterconnectionPrimitives only_null{math::IntMat{{0}, {0}}, "null-only"};
  const auto result =
      mapping::search_schedules(triplet.domain, triplet.deps, s, only_null,
                                ScheduleSearchOptions{1, true, 0});
  EXPECT_TRUE(result.feasible.empty());
}

}  // namespace
}  // namespace bitlevel
