// The bit-serial multiplier: the add-shift structure mapped onto a
// linear array (the lower-dimensional mapping of refs [5, 6, 10]).
#include <gtest/gtest.h>

#include "arch/bit_serial.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bitlevel::arch {
namespace {

TEST(BitSerialTest, ExhaustiveSmall) {
  for (math::Int p : {2, 3, 4, 5}) {
    const BitSerialMultiplier mult(p);
    for (std::uint64_t a = 0; a < (1ULL << (p - 1)); ++a) {
      for (std::uint64_t b = 0; b < (1ULL << p); ++b) {
        const auto r = mult.multiply(a, b);
        EXPECT_EQ(r.product, a * b) << a << " * " << b << " p=" << p;
      }
    }
  }
}

TEST(BitSerialTest, LinearGeometryAndTiming) {
  const math::Int p = 6;
  const BitSerialMultiplier mult(p);
  Xoshiro256 rng(17);
  const std::uint64_t a = rng.bits(static_cast<int>(p - 1));
  const std::uint64_t b = rng.bits(static_cast<int>(p));
  const auto r = mult.multiply(a, b);
  EXPECT_EQ(r.product, a * b);
  // One PE per cell column — p cells instead of the 2-D grid's p^2 —
  // at the cost of the longer 3p-2 schedule.
  EXPECT_EQ(r.stats.pe_count, mult.cells());
  EXPECT_EQ(r.stats.cycles, mult.predicted_cycles());
  EXPECT_EQ(r.stats.cycles, 3 * p - 2);
  EXPECT_EQ(r.stats.computations, p * p);
}

TEST(BitSerialTest, TopBitPreconditionEnforced) {
  const BitSerialMultiplier mult(4);
  EXPECT_THROW(mult.multiply(8, 3), PreconditionError);  // a top bit set
  EXPECT_THROW(mult.multiply(3, 16), PreconditionError);  // b too wide
}

TEST(BitSerialTest, RandomWide) {
  const math::Int p = 16;
  const BitSerialMultiplier mult(p);
  Xoshiro256 rng(18);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = rng.bits(static_cast<int>(p - 1));
    const std::uint64_t b = rng.bits(static_cast<int>(p));
    EXPECT_EQ(mult.multiply(a, b).product, a * b);
  }
}

}  // namespace
}  // namespace bitlevel::arch
