// Unit tests for the algorithm IR: index sets, validity regions,
// dependence matrices, affine maps, kernels and broadcast elimination.
#include <gtest/gtest.h>

#include "ir/affine.hpp"
#include "ir/dependence.hpp"
#include "ir/index_set.hpp"
#include "ir/kernels.hpp"
#include "ir/pipelining.hpp"
#include "ir/validity.hpp"
#include "support/error.hpp"

namespace bitlevel::ir {
namespace {

TEST(IndexSetTest, BasicGeometry) {
  const IndexSet j({1, 2}, {3, 4});
  EXPECT_EQ(j.dim(), 2u);
  EXPECT_EQ(j.size(), 9);
  EXPECT_TRUE(j.contains({2, 3}));
  EXPECT_FALSE(j.contains({0, 3}));
  EXPECT_FALSE(j.contains({2, 3, 1}));
  EXPECT_THROW(IndexSet({2}, {1}), PreconditionError);
}

TEST(IndexSetTest, LexicographicIteration) {
  const IndexSet j({1, 1}, {2, 3});
  std::vector<IntVec> visited;
  j.for_each([&](const IntVec& q) {
    visited.push_back(q);
    return true;
  });
  ASSERT_EQ(visited.size(), 6u);
  EXPECT_EQ(visited.front(), (IntVec{1, 1}));
  EXPECT_EQ(visited[1], (IntVec{1, 2}));
  EXPECT_EQ(visited.back(), (IntVec{2, 3}));
  for (std::size_t i = 1; i < visited.size(); ++i) {
    EXPECT_LT(math::lex_compare(visited[i - 1], visited[i]), 0);
  }
}

TEST(IndexSetTest, EarlyStopAndProduct) {
  const IndexSet j = IndexSet::cube(2, 3);
  int count = 0;
  const bool completed = j.for_each([&](const IntVec&) { return ++count < 4; });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 4);

  const IndexSet prod = j.product(IndexSet({0}, {1}));
  EXPECT_EQ(prod.dim(), 3u);
  EXPECT_EQ(prod.size(), 18);
  EXPECT_TRUE(prod.contains({2, 3, 0}));
}

TEST(ValidityTest, AtomsAndCombinators) {
  const auto r = ValidityRegion::coord_eq(0, 1) || ValidityRegion::coord_ge(1, 3);
  EXPECT_TRUE(r.contains({1, 0}));
  EXPECT_TRUE(r.contains({5, 3}));
  EXPECT_FALSE(r.contains({2, 2}));
  const auto n = !ValidityRegion::coord_in(0, {1, 2});
  EXPECT_TRUE(n.contains({3}));
  EXPECT_FALSE(n.contains({2}));
  const auto a = ValidityRegion::coord_ne(0, 1) && ValidityRegion::coord_le(1, 4);
  EXPECT_TRUE(a.contains({0, 4}));
  EXPECT_FALSE(a.contains({1, 4}));
  EXPECT_FALSE(a.contains({0, 5}));
  EXPECT_TRUE(ValidityRegion::all().is_all());
  EXPECT_FALSE(a.is_all());
  // Conjunction with the trivial region collapses.
  EXPECT_TRUE((ValidityRegion::all() && ValidityRegion::all()).is_all());
}

TEST(ValidityTest, AffineHalfSpaces) {
  // The carry-save band: i1 <= i2 <= i1 + 2.
  const auto band =
      ValidityRegion::affine_ge({-1, 1}, 0) && ValidityRegion::affine_ge({1, -1}, -2);
  EXPECT_TRUE(band.contains({2, 2}));
  EXPECT_TRUE(band.contains({2, 4}));
  EXPECT_FALSE(band.contains({3, 2}));
  EXPECT_FALSE(band.contains({1, 4}));
  const std::string text = ValidityRegion::affine_ge({1, -1}, -2).to_string({"i1", "i2"});
  EXPECT_NE(text.find("i1"), std::string::npos);
  EXPECT_NE(text.find(">= -2"), std::string::npos);
}

TEST(IndexSetTest, NextAdvancesLexicographically) {
  const IndexSet j({1, 1}, {2, 2});
  IntVec point = j.first();
  EXPECT_EQ(point, (IntVec{1, 1}));
  ASSERT_TRUE(j.next(point));
  EXPECT_EQ(point, (IntVec{1, 2}));
  ASSERT_TRUE(j.next(point));
  EXPECT_EQ(point, (IntVec{2, 1}));
  ASSERT_TRUE(j.next(point));
  EXPECT_EQ(point, (IntVec{2, 2}));
  EXPECT_FALSE(j.next(point));
}

TEST(TripletTest, RenderingSmoke) {
  const auto t = kernels::matmul(2).triplet();
  const std::string text = t.to_string();
  EXPECT_NE(text.find("J ="), std::string::npos);
  EXPECT_NE(text.find("cause: x"), std::string::npos);
  EXPECT_NE(text.find("z(j) = z(j - h3) + x(j) * y(j)"), std::string::npos);
}

TEST(ValidityTest, Rendering) {
  const auto r = ValidityRegion::coord_eq(3, 1) && ValidityRegion::coord_ne(4, 2);
  const std::string text = r.to_string({"j1", "j2", "j3", "i1", "i2"});
  EXPECT_NE(text.find("i1 == 1"), std::string::npos);
  EXPECT_NE(text.find("i2 != 2"), std::string::npos);
}

TEST(DependenceTest, MatrixBasics) {
  DependenceMatrix d;
  d.add({{1, 0}, "a", ValidityRegion::all()});
  d.add({{0, 1}, "b", ValidityRegion::coord_ne(0, 1)});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_FALSE(d.all_uniform());
  EXPECT_EQ(d.as_matrix(), (math::IntMat{{1, 0}, {0, 1}}));
  EXPECT_EQ(d.valid_at({1, 1}).size(), 1u);
  EXPECT_EQ(d.valid_at({2, 1}).size(), 2u);
  EXPECT_THROW(d.add({{1, 2, 3}, "c", ValidityRegion::all()}), PreconditionError);
}

TEST(AffineTest, MapsCompose) {
  const auto sel = AffineMap::select(3, {0, 2});
  EXPECT_EQ(sel.apply({7, 8, 9}), (IntVec{7, 9}));
  const auto tr = AffineMap::translate({-1, 2});
  EXPECT_EQ(tr.apply({5, 5}), (IntVec{4, 7}));
  EXPECT_EQ(AffineMap::identity(2).apply({3, 4}), (IntVec{3, 4}));
  EXPECT_THROW(AffineMap::select(2, {5}), PreconditionError);
}

TEST(KernelsTest, ModelShapes) {
  const auto mm = kernels::matmul(4);
  EXPECT_EQ(mm.dim(), 3u);
  EXPECT_EQ(*mm.h1, (IntVec{0, 1, 0}));
  EXPECT_EQ(*mm.h2, (IntVec{1, 0, 0}));
  EXPECT_EQ(*mm.h3, (IntVec{0, 0, 1}));
  // Triplet (2.4): unit columns for y, x, z (ordering x, y, z here).
  const auto t = mm.triplet();
  EXPECT_EQ(t.deps.size(), 3u);
  EXPECT_TRUE(t.deps.all_uniform());

  const auto conv = kernels::convolution1d(5, 3);
  EXPECT_EQ(conv.domain.upper(), (IntVec{5, 3}));
  EXPECT_EQ(*conv.h1, (IntVec{1, -1}));

  const auto mv = kernels::matvec(3, 4);
  EXPECT_FALSE(mv.h2.has_value());
  EXPECT_EQ(mv.triplet().deps.size(), 2u);

  EXPECT_THROW(kernels::scalar_chain(3, 1, 1), PreconditionError);
}

TEST(PipeliningTest, PrimitiveDirection) {
  EXPECT_EQ(primitive_direction({0, -2, 4}), (IntVec{0, 1, -2}));
  EXPECT_EQ(primitive_direction({3, 6}), (IntVec{1, 2}));
  EXPECT_THROW(primitive_direction({0, 0}), PreconditionError);
}

TEST(PipeliningTest, FindsMatmulBroadcasts) {
  const auto prog = kernels::matmul_broadcast_program(3);
  const auto found = find_broadcasts(prog);
  // x(j1, j3) and y(j3, j2) are broadcasts; z(j1, j2, j3-1) is not.
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].array, "x");
  EXPECT_EQ(found[0].pipelining_dir, (IntVec{0, 1, 0}));
  EXPECT_EQ(found[1].array, "y");
  EXPECT_EQ(found[1].pipelining_dir, (IntVec{1, 0, 0}));
}

// The Fortes-Moldovan transformation (2.2) -> (2.3): eliminating the
// broadcasts from the raw matmul program must reproduce the pipelined
// model exactly.
TEST(PipeliningTest, RederivesModel23) {
  const auto model = pipeline_accumulation_program(kernels::matmul_broadcast_program(4));
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(*model->h1, (IntVec{0, 1, 0}));
  EXPECT_EQ(*model->h2, (IntVec{1, 0, 0}));
  EXPECT_EQ(*model->h3, (IntVec{0, 0, 1}));
  EXPECT_EQ(model->domain, IndexSet::cube(3, 4));
}

TEST(PipeliningTest, RejectsNonBroadcastPrograms) {
  // A program whose operand reads are full-rank has nothing to pipeline.
  const AffineMap id = AffineMap::identity(2);
  Program prog{IndexSet::cube(2, 3),
               {{{"z", id},
                 {{"z", AffineMap::translate({0, -1})}, {"x", id}, {"y", id}},
                 "z = z + x*y"}}};
  EXPECT_FALSE(pipeline_accumulation_program(prog).has_value());
}

TEST(WordLevelModelTest, AccessProgramShape) {
  const auto prog = kernels::matmul(2).access_program();
  ASSERT_EQ(prog.statements.size(), 3u);
  EXPECT_EQ(prog.statements[2].reads.size(), 3u);  // z, x, y
  const auto mv_prog = kernels::matvec(2, 2).access_program();
  ASSERT_EQ(mv_prog.statements.size(), 2u);  // x pipe + accumulation
}

}  // namespace
}  // namespace bitlevel::ir
