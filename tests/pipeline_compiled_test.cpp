// The compiled straight-line executor is indistinguishable from the
// interpreted lane engine and the scalar reference: for every kernel x
// expansion x memory mode x thread count in the determinism matrix,
// run_batch with compiled=kOn must produce per-item z maps and
// statistics bit-identical to compiled=kOff — and that must hold for
// every lane-block width (64/128/256/512) under both the portable
// generic kernels (BITLEVEL_SIMD=off) and the runtime-dispatched SIMD
// backend. Also pins the mid-batch fallback accounting (a declined
// group is retried interpreted, never counted twice) and the
// compiled/lane-width argument contracts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/workload.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/compiled.hpp"
#include "pipeline/executor.hpp"
#include "support/error.hpp"

namespace bitlevel::pipeline {
namespace {

using math::Int;

struct Case {
  KernelSpec kernel;
  Int p;
};

// Every registry kernel, smallest instances that still have interior
// points on both sides of each validity-region boundary (the same
// matrix pipeline_sliced_test pins the interpreted engine with).
const std::vector<Case> kCases = {
    {{"matmul", 2, 0, 0, 0}, 3},      {{"matmul_rect", 2, 3, 2, 0}, 3},
    {{"conv", 3, 2, 0, 0}, 3},        {{"matvec", 2, 3, 0, 0}, 3},
    {{"transform", 2, 0, 0, 0}, 3},   {{"scalar", 4, 0, 0, 0}, 4},
};

DesignRequest request_for(const Case& c, core::Expansion e) {
  DesignRequest request;
  request.kernel = c.kernel;
  request.p = c.p;
  request.expansion = e;
  request.mapping = MappingStrategy::kAuto;
  return request;
}

// The workloads must outlive the items (x_fn captures the table).
std::vector<core::Workload> make_workloads(const DesignRequest& request, std::size_t count) {
  const ir::WordLevelModel model = resolve_kernel(request.kernel);
  std::vector<core::Workload> workloads;
  workloads.reserve(count);
  for (std::uint64_t seed = 1; seed <= count; ++seed) {
    workloads.push_back(core::make_safe_workload(model, request.p, request.expansion, seed));
  }
  return workloads;
}

std::vector<BatchItem> items_for(const std::vector<core::Workload>& workloads) {
  std::vector<BatchItem> items;
  items.reserve(workloads.size());
  for (const core::Workload& w : workloads) items.push_back(BatchItem{w.x_fn(), w.y_fn()});
  return items;
}

void expect_identical(const PlanRunResult& a, const PlanRunResult& b, const std::string& what) {
  EXPECT_EQ(a.z, b.z) << what;
  EXPECT_EQ(a.stats.cycles, b.stats.cycles) << what;
  EXPECT_EQ(a.stats.pe_count, b.stats.pe_count) << what;
  EXPECT_EQ(a.stats.computations, b.stats.computations) << what;
  EXPECT_EQ(a.stats.pe_utilization, b.stats.pe_utilization) << what;
  EXPECT_EQ(a.stats.link_transmissions, b.stats.link_transmissions) << what;
  EXPECT_EQ(a.stats.wire_length, b.stats.wire_length) << what;
  EXPECT_EQ(a.stats.buffered_value_cycles, b.stats.buffered_value_cycles) << what;
  EXPECT_EQ(a.stats.peak_live_slots, b.stats.peak_live_slots) << what;
  EXPECT_EQ(a.stats.observed_points, b.stats.observed_points) << what;
}

/// Set (or clear, value == nullptr) an environment variable for the
/// duration of a scope, restoring the previous state on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(PipelineCompiledTest, CompiledMatchesInterpretedAcrossMatrix) {
  for (const Case& c : kCases) {
    for (const core::Expansion e : {core::Expansion::kI, core::Expansion::kII}) {
      const DesignRequest request = request_for(c, e);
      const std::vector<core::Workload> workloads = make_workloads(request, 5);
      const std::vector<BatchItem> items = items_for(workloads);
      for (const int threads : {1, 2}) {
        for (const sim::MemoryMode memory :
             {sim::MemoryMode::kDense, sim::MemoryMode::kStreaming}) {
          PlanCache cache(8);
          BatchOptions interpreted_options;
          interpreted_options.threads = threads;
          interpreted_options.memory = memory;
          interpreted_options.sliced = SlicedMode::kOn;
          interpreted_options.compiled = SlicedMode::kOff;
          BatchOptions compiled_options = interpreted_options;
          compiled_options.compiled = SlicedMode::kOn;

          const BatchResult interpreted = run_batch(cache, request, items, interpreted_options);
          const BatchResult compiled = run_batch(cache, request, items, compiled_options);
          ASSERT_EQ(compiled.results.size(), items.size());
          EXPECT_EQ(compiled.compiled_items, static_cast<Int>(items.size()));
          EXPECT_EQ(compiled.compiled_groups, 1);
          EXPECT_EQ(compiled.sliced_items, 0);
          EXPECT_EQ(compiled.scalar_items, 0);

          const std::string what = c.kernel.name + " e" + std::to_string(static_cast<int>(e)) +
                                   " t" + std::to_string(threads) + " m" +
                                   std::to_string(static_cast<int>(memory));
          for (std::size_t i = 0; i < items.size(); ++i) {
            expect_identical(compiled.results[i], interpreted.results[i],
                             what + " item " + std::to_string(i));
            EXPECT_FALSE(compiled.results[i].z.empty()) << what;
          }
        }
      }
    }
  }
}

// Every lane-block width under both backends: the generic portable
// kernels (BITLEVEL_SIMD=off) and whatever the runtime dispatcher
// picks by default must agree bit for bit with the interpreted
// 64-lane engine — on a 70-item batch whose tail leaves most of the
// last block's lanes inactive at every width.
TEST(PipelineCompiledTest, LaneWidthSweepMatchesAcrossSimdBackends) {
  const DesignRequest request = request_for(kCases[0], core::Expansion::kII);
  const std::vector<core::Workload> workloads = make_workloads(request, 70);
  const std::vector<BatchItem> items = items_for(workloads);
  for (const sim::MemoryMode memory :
       {sim::MemoryMode::kDense, sim::MemoryMode::kStreaming}) {
    PlanCache cache(8);
    BatchOptions interpreted_options;
    interpreted_options.memory = memory;
    interpreted_options.threads = 1;
    interpreted_options.sliced = SlicedMode::kOn;
    interpreted_options.compiled = SlicedMode::kOff;
    const BatchResult interpreted = run_batch(cache, request, items, interpreted_options);

    for (const int width : {64, 128, 256, 512}) {
      for (const char* simd : {"off", static_cast<const char*>(nullptr)}) {
        const ScopedEnv env("BITLEVEL_SIMD", simd);
        BatchOptions compiled_options = interpreted_options;
        compiled_options.compiled = SlicedMode::kOn;
        compiled_options.lane_width = width;
        const BatchResult compiled = run_batch(cache, request, items, compiled_options);

        const std::string what = "width " + std::to_string(width) + " simd " +
                                 (simd != nullptr ? simd : "auto") + " m" +
                                 std::to_string(static_cast<int>(memory));
        EXPECT_EQ(compiled.compiled_groups,
                  static_cast<Int>((items.size() + static_cast<std::size_t>(width) - 1) /
                                   static_cast<std::size_t>(width)))
            << what;
        EXPECT_EQ(compiled.compiled_items, static_cast<Int>(items.size())) << what;
        for (std::size_t i = 0; i < items.size(); ++i) {
          expect_identical(compiled.results[i], interpreted.results[i],
                           what + " item " + std::to_string(i));
        }
      }
    }
  }
}

// A group the compiled path declines mid-batch is retried on the
// interpreted engine: the fallback is sticky, every item lands in
// exactly one accounting bucket, and results stay bit-identical to an
// undisturbed compiled run.
TEST(PipelineCompiledTest, MidBatchFallbackAccountsEveryItemOnce) {
  const DesignRequest request = request_for(kCases[0], core::Expansion::kII);
  const std::vector<core::Workload> workloads = make_workloads(request, 70);
  const std::vector<BatchItem> items = items_for(workloads);
  PlanCache cache(8);

  BatchOptions compiled_options;
  compiled_options.threads = 1;
  compiled_options.sliced = SlicedMode::kOn;
  compiled_options.compiled = SlicedMode::kOn;
  compiled_options.lane_width = 64;
  const BatchResult reference = run_batch(cache, request, items, compiled_options);
  EXPECT_EQ(reference.compiled_groups, 2);
  EXPECT_EQ(reference.compiled_items, 70);

  BatchOptions fallback_options = compiled_options;
  fallback_options.test_compiled_reject = [](std::size_t group_index) {
    return group_index == 1;
  };
  const BatchResult fallback = run_batch(cache, request, items, fallback_options);
  // Group 0 (items 0..63) ran compiled; group 1 was declined and its 6
  // items were retried interpreted. 64 + 6 == 70: nothing dropped,
  // nothing double-counted.
  EXPECT_EQ(fallback.compiled_groups, 1);
  EXPECT_EQ(fallback.compiled_items, 64);
  EXPECT_EQ(fallback.sliced_groups, 1);
  EXPECT_EQ(fallback.sliced_items, 6);
  EXPECT_EQ(fallback.scalar_items, 0);
  EXPECT_EQ(fallback.compiled_items + fallback.sliced_items + fallback.scalar_items,
            static_cast<Int>(items.size()));
  ASSERT_EQ(fallback.results.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    expect_identical(fallback.results[i], reference.results[i],
                     "fallback item " + std::to_string(i));
  }

  // Declining group 0 makes the WHOLE batch interpreted (the fallback
  // is sticky, group 1 is never offered to the compiled path again).
  BatchOptions all_fallback_options = compiled_options;
  all_fallback_options.test_compiled_reject = [](std::size_t) { return true; };
  const BatchResult all_fallback = run_batch(cache, request, items, all_fallback_options);
  EXPECT_EQ(all_fallback.compiled_items, 0);
  EXPECT_EQ(all_fallback.sliced_groups, 2);
  EXPECT_EQ(all_fallback.sliced_items, 70);
}

// want_z = false skips the compiled read-out exactly like the other
// paths: no z maps, streaming installs no observe predicate.
TEST(PipelineCompiledTest, WantZOffSkipsReadOut) {
  const DesignRequest request = request_for(kCases[0], core::Expansion::kII);
  const std::vector<core::Workload> workloads = make_workloads(request, 3);
  const std::vector<BatchItem> items = items_for(workloads);
  for (const sim::MemoryMode memory :
       {sim::MemoryMode::kDense, sim::MemoryMode::kStreaming}) {
    PlanCache cache(8);
    BatchOptions with_z;
    with_z.memory = memory;
    with_z.sliced = SlicedMode::kOn;
    with_z.compiled = SlicedMode::kOn;
    BatchOptions without_z = with_z;
    without_z.want_z = false;

    const BatchResult full = run_batch(cache, request, items, with_z);
    const BatchResult bare = run_batch(cache, request, items, without_z);
    for (std::size_t i = 0; i < items.size(); ++i) {
      EXPECT_FALSE(full.results[i].z.empty());
      EXPECT_TRUE(bare.results[i].z.empty());
      EXPECT_EQ(bare.results[i].stats.cycles, full.results[i].stats.cycles);
      EXPECT_EQ(bare.results[i].stats.computations, full.results[i].stats.computations);
      if (memory == sim::MemoryMode::kStreaming) {
        EXPECT_EQ(bare.results[i].stats.observed_points, 0);
      } else {
        EXPECT_EQ(bare.results[i].stats.observed_points, full.results[i].stats.observed_points);
      }
    }
  }
}

// Every plan composed for a sliceable kernel with a mapping carries a
// compiled schedule; run_compiled_group is reachable from it directly.
TEST(PipelineCompiledTest, ComposedPlansCarryCompiledSchedules) {
  for (const Case& c : kCases) {
    const PlanPtr plan = compose(request_for(c, core::Expansion::kII));
    ASSERT_TRUE(plan->has_mapping()) << c.kernel.name;
    ASSERT_NE(plan->compiled, nullptr) << c.kernel.name;
    EXPECT_EQ(plan->compiled->p, c.p) << c.kernel.name;
    EXPECT_FALSE(plan->compiled->events.empty()) << c.kernel.name;
    EXPECT_GE(plan->compiled->pass_first.size(), 2u) << c.kernel.name;
    // Pass boundaries are a monotone cover of the event array.
    EXPECT_EQ(plan->compiled->pass_first.front(), 0) << c.kernel.name;
    EXPECT_EQ(static_cast<std::size_t>(plan->compiled->pass_first.back()),
              plan->compiled->events.size())
        << c.kernel.name;
  }
}

// lane_width = 0 under compiled=on picks the narrowest block width
// that holds the whole batch — one group, no wasted tail lanes — and
// reports the pick in BatchResult::compiled_lane_width. Results stay
// bit-identical to every explicit width.
TEST(PipelineCompiledTest, AutoLaneWidthPicksNarrowestFit) {
  EXPECT_EQ(auto_compiled_lane_width(1), 64);
  EXPECT_EQ(auto_compiled_lane_width(64), 64);
  EXPECT_EQ(auto_compiled_lane_width(65), 128);
  EXPECT_EQ(auto_compiled_lane_width(128), 128);
  EXPECT_EQ(auto_compiled_lane_width(129), 256);
  EXPECT_EQ(auto_compiled_lane_width(300), 512);
  EXPECT_EQ(auto_compiled_lane_width(512), 512);
  EXPECT_EQ(auto_compiled_lane_width(600), 512);  // beyond one block: chunked

  const DesignRequest request = request_for(kCases[0], core::Expansion::kII);
  for (const std::size_t count : {std::size_t{5}, std::size_t{70}, std::size_t{130}}) {
    const std::vector<core::Workload> workloads = make_workloads(request, count);
    const std::vector<BatchItem> items = items_for(workloads);
    PlanCache cache(8);
    BatchOptions options;
    options.sliced = SlicedMode::kOn;
    options.compiled = SlicedMode::kOn;
    options.lane_width = 0;  // auto
    const BatchResult auto_width = run_batch(cache, request, items, options);
    const int expected = auto_compiled_lane_width(count);
    EXPECT_EQ(auto_width.compiled_lane_width, expected) << count;
    EXPECT_EQ(auto_width.compiled_groups, 1) << count;  // one block holds all
    EXPECT_EQ(auto_width.compiled_items, static_cast<Int>(count)) << count;

    BatchOptions explicit_options = options;
    explicit_options.lane_width = expected;
    const BatchResult explicit_width = run_batch(cache, request, items, explicit_options);
    for (std::size_t i = 0; i < count; ++i) {
      expect_identical(auto_width.results[i], explicit_width.results[i],
                       "auto vs explicit width, item " + std::to_string(i));
    }
  }
}

// The scatter mask (the serve coalescer's cancelled-member seam):
// masked items still ride their lane group — the group is never torn —
// but their z maps and stats stay untouched while every unmasked item
// is bit-identical to an unmasked run, and the accounting ledger still
// counts every item exactly once.
TEST(PipelineCompiledTest, MaskItemDropsResultsWithoutTearingTheGroup) {
  const DesignRequest request = request_for(kCases[0], core::Expansion::kII);
  const std::vector<core::Workload> workloads = make_workloads(request, 9);
  const std::vector<BatchItem> items = items_for(workloads);
  struct PathCase {
    SlicedMode sliced;
    SlicedMode compiled;
    const char* what;
  };
  const std::vector<PathCase> paths = {
      {SlicedMode::kOn, SlicedMode::kOn, "compiled"},
      {SlicedMode::kOn, SlicedMode::kOff, "interpreted"},
      {SlicedMode::kOff, SlicedMode::kOff, "scalar"},
  };
  for (const PathCase& path : paths) {
    PlanCache cache(8);
    BatchOptions options;
    options.sliced = path.sliced;
    options.compiled = path.compiled;
    const BatchResult unmasked = run_batch(cache, request, items, options);

    BatchOptions masked_options = options;
    masked_options.mask_item = [](std::size_t index) { return index == 2 || index == 7; };
    const BatchResult masked = run_batch(cache, request, items, masked_options);

    ASSERT_EQ(masked.results.size(), items.size()) << path.what;
    // Same ledger: masking never changes how items are grouped or run.
    EXPECT_EQ(masked.compiled_items, unmasked.compiled_items) << path.what;
    EXPECT_EQ(masked.compiled_groups, unmasked.compiled_groups) << path.what;
    EXPECT_EQ(masked.sliced_items, unmasked.sliced_items) << path.what;
    EXPECT_EQ(masked.sliced_groups, unmasked.sliced_groups) << path.what;
    EXPECT_EQ(masked.scalar_items, unmasked.scalar_items) << path.what;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i == 2 || i == 7) {
        EXPECT_TRUE(masked.results[i].z.empty()) << path.what << " item " << i;
        EXPECT_EQ(masked.results[i].stats.cycles, 0) << path.what << " item " << i;
      } else {
        expect_identical(masked.results[i], unmasked.results[i],
                         std::string(path.what) + " item " + std::to_string(i));
      }
    }
  }
}

// Per-item attribution: item_paths / item_groups cover every item, and
// counting ordinal transitions over a contiguous range reconstructs
// the ledger — the contract the serve coalescer's per-member scatter
// depends on.
TEST(PipelineCompiledTest, ItemAttributionReconstructsTheLedger) {
  const DesignRequest request = request_for(kCases[0], core::Expansion::kII);
  const std::vector<core::Workload> workloads = make_workloads(request, 70);
  const std::vector<BatchItem> items = items_for(workloads);
  PlanCache cache(8);
  BatchOptions options;
  options.sliced = SlicedMode::kOn;
  options.compiled = SlicedMode::kOn;
  options.lane_width = 64;  // 70 items -> 2 compiled groups
  const BatchResult batch = run_batch(cache, request, items, options);
  ASSERT_EQ(batch.item_paths.size(), items.size());
  ASSERT_EQ(batch.item_groups.size(), items.size());

  Int compiled_items = 0;
  Int compiled_groups = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_EQ(batch.item_paths[i], ItemPath::kCompiled) << i;
    compiled_items += 1;
    if (i == 0 || batch.item_groups[i] != batch.item_groups[i - 1]) compiled_groups += 1;
  }
  EXPECT_EQ(compiled_items, batch.compiled_items);
  EXPECT_EQ(compiled_groups, batch.compiled_groups);
  EXPECT_EQ(compiled_groups, 2);

  // Scalar path: every item its own run, distinct ordinals throughout.
  BatchOptions scalar_options;
  scalar_options.sliced = SlicedMode::kOff;
  const BatchResult scalar = run_batch(cache, request, items, scalar_options);
  ASSERT_EQ(scalar.item_paths.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(scalar.item_paths[i], ItemPath::kScalar) << i;
    if (i > 0) EXPECT_NE(scalar.item_groups[i], scalar.item_groups[i - 1]) << i;
  }
}

TEST(PipelineCompiledTest, ArgumentContracts) {
  const DesignRequest request = request_for(kCases[0], core::Expansion::kII);
  const std::vector<core::Workload> workloads = make_workloads(request, 2);
  const std::vector<BatchItem> items = items_for(workloads);
  PlanCache cache(8);

  // compiled=on needs the sliced path under it.
  BatchOptions no_sliced;
  no_sliced.sliced = SlicedMode::kOff;
  no_sliced.compiled = SlicedMode::kOn;
  EXPECT_THROW(run_batch(cache, request, items, no_sliced), PreconditionError);

  // Lane widths are 0/64/128/256/512, and wide blocks are compiled-only.
  BatchOptions bad_width;
  bad_width.lane_width = 100;
  EXPECT_THROW(run_batch(cache, request, items, bad_width), PreconditionError);
  BatchOptions wide_interpreted;
  wide_interpreted.sliced = SlicedMode::kOn;
  wide_interpreted.compiled = SlicedMode::kOff;
  wide_interpreted.lane_width = 256;
  EXPECT_THROW(run_batch(cache, request, items, wide_interpreted), PreconditionError);
}

}  // namespace
}  // namespace bitlevel::pipeline
