// The cycle-accurate machine: correct dataflow on a simple pipeline,
// and hard failures on physical-invariant violations.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/machine.hpp"
#include "sim/slot_arena.hpp"
#include "sim/timeline.hpp"
#include "support/error.hpp"

namespace bitlevel::sim {
namespace {

using mapping::InterconnectionPrimitives;
using mapping::MappingMatrix;

// A 1-D running-sum pipeline: domain [1,n], one uniform dependence
// d = [1]; PE j at time j; channel "acc" accumulates j.
struct PipelineFixture {
  ir::IndexSet domain;
  ir::DependenceMatrix deps;
  MappingMatrix t;
  InterconnectionPrimitives prims;
  IntMat k;

  explicit PipelineFixture(Int n)
      : domain({1}, {n}),
        deps({{{1}, "acc", ir::ValidityRegion::all()}}),
        t(math::IntMat{{1}, {1}}),
        prims{math::IntMat{{1}}, "line"},
        k(math::IntMat{{1}}) {}

  MachineConfig config() const { return {domain, deps, t, prims, k, {"acc"}}; }
};

TEST(MachineTest, RunningSumFlowsCorrectly) {
  const Int n = 8;
  PipelineFixture fx(n);
  Machine machine(
      fx.config(),
      [](const IntVec& q, const std::vector<ColumnInput>& in) -> Outputs {
        return {in[0].producer[0] + q[0]};
      },
      [](const IntVec&, std::size_t) -> Outputs { return {0}; });
  const auto stats = machine.run();
  EXPECT_EQ(stats.cycles, n);
  EXPECT_EQ(stats.pe_count, n);
  EXPECT_EQ(stats.computations, n);
  EXPECT_EQ(stats.peak_parallelism, 1);
  EXPECT_EQ(stats.link_transmissions, n - 1);
  EXPECT_EQ(machine.outputs_at({n})[0], n * (n + 1) / 2);
  EXPECT_TRUE(machine.has_outputs({1}));
  EXPECT_FALSE(machine.has_outputs({n + 1}));
}

TEST(MachineTest, DetectsComputationalConflicts) {
  // Schedule Pi = [0]: every point at time 0 on... Pi=0 also maps all
  // points to one PE+time via S = [0]; use S=[0], Pi=[1] is fine, so
  // force the conflict with S = [0] and Pi scheduling pairs together.
  ir::IndexSet domain({1}, {4});
  ir::DependenceMatrix deps;  // no dependences
  MappingMatrix t(math::IntMat{{0}, {2}});  // time 2j: distinct; PE 0
  // Make two points collide: use Pi = [0] instead.
  MappingMatrix colliding(math::IntMat{{0}, {0}});
  InterconnectionPrimitives prims{math::IntMat{{1}}, "line"};
  Machine machine({domain, deps, colliding, prims, IntMat(1, 0), {"v"}},
                  [](const IntVec&, const std::vector<ColumnInput>&) -> Outputs { return {1}; },
                  [](const IntVec&, std::size_t) -> Outputs { return {0}; });
  EXPECT_THROW(machine.run(), PreconditionError);
}

TEST(MachineTest, DetectsScheduleViolation) {
  // Dependence d = [1] but schedule Pi = [-1]: consumers run before
  // producers.
  ir::IndexSet domain({1}, {3});
  ir::DependenceMatrix deps({{{1}, "v", ir::ValidityRegion::all()}});
  MappingMatrix t(math::IntMat{{1}, {-1}});
  InterconnectionPrimitives prims{math::IntMat{{1, -1}}, "line"};
  Machine machine({domain, deps, t, prims, math::IntMat{{0}, {0}}, {"v"}},
                  [](const IntVec&, const std::vector<ColumnInput>& in) -> Outputs {
                    return {in[0].producer != nullptr ? in[0].producer[0] : 0};
                  },
                  [](const IntVec&, std::size_t) -> Outputs { return {0}; });
  EXPECT_THROW(machine.run(), PreconditionError);
}

TEST(MachineTest, RejectsLateRouting) {
  // K routes d = [1] as 3 hops of the line primitive, but Pi*d = 1:
  // the value arrives after its consumption cycle.
  PipelineFixture fx(4);
  fx.k = math::IntMat{{3}};
  Machine machine(fx.config(),
                  [](const IntVec&, const std::vector<ColumnInput>&) -> Outputs { return {0}; },
                  [](const IntVec&, std::size_t) -> Outputs { return {0}; });
  EXPECT_THROW(machine.run(), PreconditionError);
}

TEST(MachineTest, SingleShot) {
  PipelineFixture fx(3);
  Machine machine(fx.config(),
                  [](const IntVec&, const std::vector<ColumnInput>&) -> Outputs { return {0}; },
                  [](const IntVec&, std::size_t) -> Outputs { return {0}; });
  machine.run();
  EXPECT_THROW(machine.run(), PreconditionError);
}

TEST(MachineTest, ValidatesConfigShapes) {
  PipelineFixture fx(3);
  auto bad = fx.config();
  bad.k = math::IntMat(2, 5);  // wrong shape
  EXPECT_THROW(Machine(bad,
                       [](const IntVec&, const std::vector<ColumnInput>&) -> Outputs {
                         return {0};
                       },
                       [](const IntVec&, std::size_t) -> Outputs { return {0}; }),
               PreconditionError);
}

TEST(MachineTest, ComputeMustFillChannels) {
  PipelineFixture fx(2);
  Machine machine(fx.config(),
                  [](const IntVec&, const std::vector<ColumnInput>&) -> Outputs {
                    return {0, 0};  // two channels declared? no — one
                  },
                  [](const IntVec&, std::size_t) -> Outputs { return {0}; });
  EXPECT_THROW(machine.run(), PreconditionError);
}

// A 2-D fixture with wide Π-hyperplane wavefronts (up to `n` events per
// cycle), two dependence columns (one pipelined hop, one stationary
// buffered link) and value-carrying compute — enough surface that any
// divergence between the serial and the fanned-out executor shows up in
// outputs or stats.
struct WavefrontFixture {
  ir::IndexSet domain;
  ir::DependenceMatrix deps;
  MappingMatrix t;
  InterconnectionPrimitives prims;
  IntMat k;

  explicit WavefrontFixture(Int n)
      : domain({1, 1}, {n, n}),
        deps({{{1, 0}, "a", ir::ValidityRegion::all()},
              {{0, 1}, "b", ir::ValidityRegion::all()}}),
        t(math::IntMat{{1, 0}, {1, 1}}),  // PE i, cycle i + j
        prims{math::IntMat{{1, 0}}, "line+stay"},
        k(math::IntMat{{1, 0}, {0, 0}}) {}

  MachineConfig config(int threads) const {
    return {domain, deps, t, prims, k, {"s"}, threads};
  }

  Machine machine(int threads) const {
    return Machine(
        config(threads),
        [](const IntVec& q, const std::vector<ColumnInput>& in) -> Outputs {
          return {(in[0].producer[0] * 3 + in[1].producer[0]) % 1000003 + q[0] + 7 * q[1]};
        },
        [](const IntVec& q, std::size_t column) -> Outputs {
          return {static_cast<Int>(column + 1) * (13 * q[0] + 31 * q[1])};
        });
  }
};

TEST(MachineParallelTest, OutputsAndStatsBitIdenticalAcrossThreadCounts) {
  const Int n = 40;  // wavefronts up to 40 events: well past the fan-out floor
  WavefrontFixture fx(n);
  Machine reference = fx.machine(1);
  const auto ref_stats = reference.run();
  EXPECT_EQ(ref_stats.threads_used, 1);
  EXPECT_EQ(ref_stats.peak_parallelism, n);

  for (int threads : {2, 8}) {
    Machine machine = fx.machine(threads);
    const auto stats = machine.run();
    EXPECT_EQ(stats.threads_used, threads);

    EXPECT_EQ(stats.first_cycle, ref_stats.first_cycle);
    EXPECT_EQ(stats.last_cycle, ref_stats.last_cycle);
    EXPECT_EQ(stats.cycles, ref_stats.cycles);
    EXPECT_EQ(stats.pe_count, ref_stats.pe_count);
    EXPECT_EQ(stats.computations, ref_stats.computations);
    EXPECT_EQ(stats.pe_utilization, ref_stats.pe_utilization);  // exact, not approximate
    EXPECT_EQ(stats.link_transmissions, ref_stats.link_transmissions);
    EXPECT_EQ(stats.wire_length, ref_stats.wire_length);
    EXPECT_EQ(stats.buffered_value_cycles, ref_stats.buffered_value_cycles);
    EXPECT_EQ(stats.buffer_depth, ref_stats.buffer_depth);
    EXPECT_EQ(stats.peak_parallelism, ref_stats.peak_parallelism);

    bool outputs_identical = true;
    fx.domain.for_each([&](const IntVec& q) {
      outputs_identical = outputs_identical && machine.outputs_at(q)[0] == reference.outputs_at(q)[0];
      return true;
    });
    EXPECT_TRUE(outputs_identical) << "threads = " << threads;
  }
}

TEST(MachineParallelTest, ConflictDetectionFiresUnderParallelExecutor) {
  // Every event of a wavefront lands on PE [0]: the (PE, cycle) check
  // must fire exactly as in the serial executor.
  ir::IndexSet domain({1, 1}, {40, 40});
  ir::DependenceMatrix deps;  // no dependences
  MappingMatrix colliding(math::IntMat{{0, 0}, {1, 1}});
  InterconnectionPrimitives prims{math::IntMat{{1}}, "line"};
  Machine machine({domain, deps, colliding, prims, IntMat(1, 0), {"v"}, 4},
                  [](const IntVec&, const std::vector<ColumnInput>&) -> Outputs { return {1}; },
                  [](const IntVec&, std::size_t) -> Outputs { return {0}; });
  EXPECT_THROW(machine.run(), PreconditionError);
}

TEST(MachineParallelTest, LateArrivalCheckFiresUnderParallelExecutor) {
  // Route the [1,0] column as 3 hops against a slack of 1: (4.1) must
  // reject the routing regardless of the thread count.
  WavefrontFixture fx(40);
  fx.k = math::IntMat{{3, 0}, {0, 0}};
  Machine machine(fx.config(4),
                  [](const IntVec&, const std::vector<ColumnInput>&) -> Outputs { return {0}; },
                  [](const IntVec&, std::size_t) -> Outputs { return {0}; });
  EXPECT_THROW(machine.run(), PreconditionError);
}

TEST(MachineParallelTest, SameCycleDependenceRejected) {
  // Pi * d = 0 would let a consumer race its producer inside one
  // wavefront; condition 2 rejects it statically for every thread count.
  for (int threads : {1, 4}) {
    WavefrontFixture fx(8);
    fx.t = MappingMatrix(math::IntMat{{1, 0}, {1, 0}});  // cycle = i: d2 = [0,1] stays in-cycle
    fx.k = math::IntMat{{0, 0}, {0, 0}};
    Machine machine(fx.config(threads),
                    [](const IntVec&, const std::vector<ColumnInput>&) -> Outputs { return {0}; },
                    [](const IntVec&, std::size_t) -> Outputs { return {0}; });
    EXPECT_THROW(machine.run(), PreconditionError);
  }
}

// ---------------------------------------------------------------------------
// Streaming memory mode: identical observable behaviour to dense, with
// peak residency bounded by the dependence window instead of |J|.

TEST(MachineStreamingTest, BitIdenticalToDenseAcrossThreadCounts) {
  const Int n = 40;
  WavefrontFixture fx(n);
  Machine reference = fx.machine(1);
  const auto ref_stats = reference.run();

  for (int threads : {1, 4}) {
    auto cfg = fx.config(threads);
    cfg.memory = MemoryMode::kStreaming;
    cfg.observe = [](const IntVec&) { return true; };  // retain all for comparison
    Machine machine(
        std::move(cfg),
        [](const IntVec& q, const std::vector<ColumnInput>& in) -> Outputs {
          return {(in[0].producer[0] * 3 + in[1].producer[0]) % 1000003 + q[0] + 7 * q[1]};
        },
        [](const IntVec& q, std::size_t column) -> Outputs {
          return {static_cast<Int>(column + 1) * (13 * q[0] + 31 * q[1])};
        });
    const auto stats = machine.run();

    // Every stat except the memory-mode pair must be bit-identical.
    EXPECT_EQ(stats.first_cycle, ref_stats.first_cycle);
    EXPECT_EQ(stats.last_cycle, ref_stats.last_cycle);
    EXPECT_EQ(stats.cycles, ref_stats.cycles);
    EXPECT_EQ(stats.pe_count, ref_stats.pe_count);
    EXPECT_EQ(stats.computations, ref_stats.computations);
    EXPECT_EQ(stats.pe_utilization, ref_stats.pe_utilization);
    EXPECT_EQ(stats.link_transmissions, ref_stats.link_transmissions);
    EXPECT_EQ(stats.wire_length, ref_stats.wire_length);
    EXPECT_EQ(stats.buffered_value_cycles, ref_stats.buffered_value_cycles);
    EXPECT_EQ(stats.buffer_depth, ref_stats.buffer_depth);
    EXPECT_EQ(stats.peak_parallelism, ref_stats.peak_parallelism);

    // The window for Pi = [1,1], d1 = [1,0], d2 = [0,1] is 1 cycle: far
    // fewer live slots than the n^2 dense footprint.
    EXPECT_EQ(ref_stats.peak_live_slots, n * n);
    EXPECT_LT(stats.peak_live_slots, 3 * n);
    EXPECT_EQ(stats.observed_points, n * n);

    bool outputs_identical = true;
    fx.domain.for_each([&](const IntVec& q) {
      outputs_identical =
          outputs_identical && machine.outputs_at(q)[0] == reference.outputs_at(q)[0];
      return true;
    });
    EXPECT_TRUE(outputs_identical) << "threads = " << threads;
  }
}

TEST(MachineStreamingTest, OnOutputSeesEveryPointInDeterministicOrder) {
  // The sink fires at the cycle barrier in lexicographic-within-cycle
  // order — the same sequence for both memory modes and every thread
  // count.
  const Int n = 24;
  WavefrontFixture fx(n);
  using Trace = std::vector<std::pair<IntVec, Int>>;
  const auto traced = [&fx](MemoryMode mode, int threads) {
    Trace trace;
    auto cfg = fx.config(threads);
    cfg.memory = mode;
    cfg.on_output = [&trace](const IntVec& q, const Int* outputs) {
      trace.emplace_back(q, outputs[0]);
    };
    Machine machine(
        std::move(cfg),
        [](const IntVec& q, const std::vector<ColumnInput>& in) -> Outputs {
          return {(in[0].producer[0] * 3 + in[1].producer[0]) % 1000003 + q[0] + 7 * q[1]};
        },
        [](const IntVec& q, std::size_t column) -> Outputs {
          return {static_cast<Int>(column + 1) * (13 * q[0] + 31 * q[1])};
        });
    machine.run();
    return trace;
  };

  const Trace reference = traced(MemoryMode::kDense, 1);
  EXPECT_EQ(reference.size(), static_cast<std::size_t>(n * n));
  EXPECT_EQ(traced(MemoryMode::kDense, 4), reference);
  EXPECT_EQ(traced(MemoryMode::kStreaming, 1), reference);
  EXPECT_EQ(traced(MemoryMode::kStreaming, 4), reference);
}

TEST(MachineStreamingTest, UnobservedPointsAreRetired) {
  // Without an observe predicate nothing survives the sliding window:
  // outputs_at refuses cleanly instead of returning freed memory.
  const Int n = 8;
  WavefrontFixture fx(n);
  auto cfg = fx.config(1);
  cfg.memory = MemoryMode::kStreaming;
  cfg.observe = [n](const IntVec& q) { return q[0] == n && q[1] == n; };
  Machine machine(
      std::move(cfg),
      [](const IntVec& q, const std::vector<ColumnInput>& in) -> Outputs {
        return {in[0].producer[0] + in[1].producer[0] + q[0]};
      },
      [](const IntVec&, std::size_t) -> Outputs { return {1}; });
  const auto stats = machine.run();
  EXPECT_EQ(stats.observed_points, 1);
  EXPECT_TRUE(machine.has_outputs({n, n}));
  EXPECT_FALSE(machine.has_outputs({1, 1}));
  EXPECT_THROW(machine.outputs_at({1, 1}), PreconditionError);

  // The observed corner matches a dense run bit-for-bit.
  Machine dense(
      fx.config(1),
      [](const IntVec& q, const std::vector<ColumnInput>& in) -> Outputs {
        return {in[0].producer[0] + in[1].producer[0] + q[0]};
      },
      [](const IntVec&, std::size_t) -> Outputs { return {1}; });
  dense.run();
  EXPECT_EQ(machine.outputs_at({n, n})[0], dense.outputs_at({n, n})[0]);
}

TEST(MachineStreamingTest, MillionPointDomainBoundedResidency) {
  // The acceptance bar for the streaming engine: a 1000x1000 domain
  // (10^6 index points) must run with >= 10x fewer live slots than the
  // dense footprint. The Pi = [1,1] window is 1 cycle, so residency is
  // two anti-diagonals — about 2n slots, a ~500x reduction.
  const Int n = 1000;
  const Int npoints = n * n;
  WavefrontFixture fx(n);
  auto cfg = fx.config(1);
  cfg.memory = MemoryMode::kStreaming;
  cfg.observe = [n](const IntVec& q) { return q[0] == n && q[1] == n; };
  Int seen = 0;
  cfg.on_output = [&seen](const IntVec&, const Int*) { ++seen; };
  Machine machine(
      std::move(cfg),
      [](const IntVec& q, const std::vector<ColumnInput>& in) -> Outputs {
        return {(in[0].producer[0] * 3 + in[1].producer[0]) % 1000003 + q[0] + 7 * q[1]};
      },
      [](const IntVec& q, std::size_t column) -> Outputs {
        return {static_cast<Int>(column + 1) * (13 * q[0] + 31 * q[1])};
      });
  const auto stats = machine.run();
  EXPECT_EQ(stats.computations, npoints);
  EXPECT_EQ(seen, npoints);
  EXPECT_EQ(stats.observed_points, 1);
  EXPECT_LE(stats.peak_live_slots * 10, npoints);  // the >= 10x acceptance bound
  EXPECT_LE(stats.peak_live_slots, 3 * n);         // the actual ~2n window
  EXPECT_TRUE(machine.has_outputs({n, n}));
}

TEST(MachineTest, RejectsZeroDimensionalDomain) {
  // A 0-dim domain used to underflow the stride loop (undefined
  // behaviour); every path to such a machine must now fail as a clean
  // precondition before any statistics work.
  const auto build = [] {
    ir::IndexSet domain({}, {});
    MappingMatrix t(math::IntMat(1, 0));
    InterconnectionPrimitives prims{math::IntMat{{1}}, "line"};
    Machine({domain, ir::DependenceMatrix{}, t, prims, IntMat(1, 0), {"v"}},
            [](const IntVec&, const std::vector<ColumnInput>&) -> Outputs { return {0}; },
            [](const IntVec&, std::size_t) -> Outputs { return {0}; });
  };
  EXPECT_THROW(build(), PreconditionError);
}

TEST(MachineTest, UtilizationIsFiniteOnMinimalDomain) {
  // Degenerate single-point run: utilization must be a defined, finite
  // number (the divide-by-zero guard), here exactly 1.
  ir::IndexSet domain({1}, {1});
  ir::DependenceMatrix deps;
  MappingMatrix t(math::IntMat{{1}, {1}});
  InterconnectionPrimitives prims{math::IntMat{{1}}, "line"};
  Machine machine({domain, deps, t, prims, IntMat(1, 0), {"v"}},
                  [](const IntVec&, const std::vector<ColumnInput>&) -> Outputs { return {7}; },
                  [](const IntVec&, std::size_t) -> Outputs { return {0}; });
  const auto stats = machine.run();
  EXPECT_EQ(stats.pe_utilization, 1.0);
  EXPECT_EQ(stats.cycles, 1);
  EXPECT_EQ(stats.pe_count, 1);
}

TEST(TimelineTest, ActivityChartShape) {
  // 2-D domain mapped to a 1-D array of 3 PEs over 5 cycles.
  const ir::IndexSet domain({1, 1}, {3, 3});
  const MappingMatrix t(math::IntMat{{1, 0}, {1, 1}});
  const std::string chart = activity_chart(domain, t);
  // Three PE rows, each active in 3 of 5 cycles.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 4);  // header + 3 rows
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '#'), 9);
  EXPECT_NE(chart.find("cycles 2..6"), std::string::npos);
}

TEST(TimelineTest, SnapshotsCountComputations) {
  const ir::IndexSet domain({1, 1, 1}, {2, 2, 2});
  const MappingMatrix t(math::IntMat{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}});
  const std::string snaps = cycle_snapshots(domain, t);
  // Every index point appears as exactly one '#' across all frames.
  EXPECT_EQ(std::count(snaps.begin(), snaps.end(), '#'), 8);
  EXPECT_NE(snaps.find("cycle 3"), std::string::npos);
}

TEST(SlotArenaTest, RecyclesWithoutTrackingByDefault) {
  SlotArena arena(2);
  Int* slot = arena.acquire(7);
  slot[0] = 1;
  slot[1] = 2;
  arena.release(7);
  // Untracked mode keeps the O(window) memory contract: a retired key
  // may come back (recovery never re-executes on clean runs).
  EXPECT_EQ(arena.find(7), nullptr);
  Int* again = arena.acquire(7);
  EXPECT_NE(again, nullptr);
}

TEST(SlotArenaTest, TrackedModeCatchesDoubleRetire) {
  SlotArena arena(2);
  arena.track_retired(true);
  arena.acquire(7);
  arena.release(7);
  EXPECT_THROW(arena.release(7), PreconditionError);
}

TEST(SlotArenaTest, TrackedModeCatchesUseAfterRetire) {
  // Recovery re-execution can revisit a wavefront whose inputs the
  // streaming window already retired; tracked mode turns that silent
  // read of recycled data into a hard error.
  SlotArena arena(2);
  arena.track_retired(true);
  Int* slot = arena.acquire(7);
  slot[0] = 41;
  slot[1] = 42;
  arena.release(7);
  EXPECT_THROW(arena.find(7), PreconditionError);
  EXPECT_THROW(arena.slot_data(7), PreconditionError);
  EXPECT_THROW(arena.acquire(7), PreconditionError);
  // Other keys stay fully usable.
  Int* other = arena.acquire(8);
  EXPECT_NE(other, nullptr);
  EXPECT_NE(arena.find(8), nullptr);
}

TEST(SlotArenaTest, RetiredBundlesArePoisoned) {
  SlotArena arena(2);
  arena.track_retired(true);
  Int* slot = arena.acquire(3);
  slot[0] = 123;
  slot[1] = 456;
  arena.release(3);
  // The recycled slot must not leak the retired values to its next
  // occupant even before initialization.
  Int* fresh = arena.acquire(4);
  EXPECT_NE(fresh[0], 123);
  EXPECT_NE(fresh[1], 456);
}

TEST(TimelineTest, SnapshotRequires2D) {
  const ir::IndexSet domain({1}, {4});
  const MappingMatrix t(math::IntMat{{1}, {1}});  // 1-D space would be k=2
  EXPECT_THROW(cycle_snapshots(domain, t), PreconditionError);
}

}  // namespace
}  // namespace bitlevel::sim
