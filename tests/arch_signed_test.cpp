// Signed matrix multiplication via the bias identity on the unsigned
// bit-level arrays.
#include <gtest/gtest.h>

#include "arch/signed_matmul.hpp"
#include "support/error.hpp"

namespace bitlevel::arch {
namespace {

TEST(SignedMatmulTest, RandomSignedProducts) {
  // 3-bit signed entries (in [-4, 3]) on arrays with headroom.
  const math::Int u = 3, w = 3, p = 8;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  for (std::uint64_t seed : {1ULL, 9ULL, 33ULL}) {
    const SignedWordMatrix x = SignedWordMatrix::random(u, 3, seed);
    const SignedWordMatrix y = SignedWordMatrix::random(u, 3, seed + 1);
    const auto result = multiply_signed(array, w, x, y);
    EXPECT_EQ(result.z, SignedWordMatrix::multiply_reference(x, y)) << "seed " << seed;
    EXPECT_EQ(result.passes, 3);
    EXPECT_EQ(result.stats.cycles, 3 * (u - 1) + 3 * (p - 1) + 1);
  }
}

TEST(SignedMatmulTest, ExtremeValues) {
  const math::Int u = 2, w = 4, p = 10;
  const BitLevelMatmulArray array(MatmulMapping::kFig5, u, p);
  SignedWordMatrix x(u), y(u);
  // Corners of the signed range: -8 and 7 for w = 4.
  x.at(1, 1) = -8;
  x.at(1, 2) = 7;
  x.at(2, 1) = 7;
  x.at(2, 2) = -8;
  y.at(1, 1) = -8;
  y.at(1, 2) = -1;
  y.at(2, 1) = 7;
  y.at(2, 2) = 7;
  const auto result = multiply_signed(array, w, x, y);
  EXPECT_EQ(result.z, SignedWordMatrix::multiply_reference(x, y));
}

TEST(SignedMatmulTest, RejectsOutOfRange) {
  const BitLevelMatmulArray array(MatmulMapping::kFig4, 2, 8);
  SignedWordMatrix x(2), y(2);
  x.at(1, 1) = 4;  // out of [-4, 3] for w = 3
  EXPECT_THROW(multiply_signed(array, 3, x, y), PreconditionError);
}

TEST(SignedMatmulTest, RejectsInsufficientWidth) {
  const BitLevelMatmulArray array(MatmulMapping::kFig4, 2, 3);
  const SignedWordMatrix x(2), y(2);
  EXPECT_THROW(multiply_signed(array, 3, x, y), PreconditionError);
}

}  // namespace
}  // namespace bitlevel::arch
