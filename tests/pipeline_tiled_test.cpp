// Tiled partitioning is indistinguishable from the monolithic array:
// for ragged tile grids (interior/edge/corner shapes) crossed with
// memory modes x thread counts x sliced/compiled on|off|auto, the
// accumulated tiled output must be bit-identical to a monolithic
// run_plan of the same instance, with the tiles_* counter ledger
// summing exactly and at most ONE composition per distinct tile shape
// per cache. Also pins tile-dimension resolution (defaults, max_pes
// derivation, error cases), the arch multiply_tiled wrapper against
// BitLevelMatmulArray::multiply for both published mappings, a
// budget-bounded instance the fixed-size virtual array streams in many
// passes, and the plan cache's resident-bytes accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "arch/matmul_arrays.hpp"
#include "core/evaluator.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/tiling.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bitlevel::pipeline {
namespace {

using math::Int;
using math::IntVec;

// Procedural operands honoring the model's pipelining invariants:
// x(j) is constant along h1 = [0,1,0] (a function of j1, j3 only) and
// y(j) along h2 = [1,0,0] (a function of j3, j2). Stateless, so the
// same function serves the monolithic run and every offset tile view.
core::OperandFn proc_x(std::uint64_t seed, std::uint64_t bound) {
  return [seed, bound](const IntVec& j) {
    return hash_mix(hash_mix(hash_mix(seed, 1), static_cast<std::uint64_t>(j[0])),
                    static_cast<std::uint64_t>(j[2])) %
           (bound + 1);
  };
}

core::OperandFn proc_y(std::uint64_t seed, std::uint64_t bound) {
  return [seed, bound](const IntVec& j) {
    return hash_mix(hash_mix(hash_mix(seed, 2), static_cast<std::uint64_t>(j[2])),
                    static_cast<std::uint64_t>(j[1])) %
           (bound + 1);
  };
}

DesignRequest matmul_request(Int u, Int p) {
  DesignRequest request;
  request.kernel = KernelSpec{"matmul", u, 0, 0, 0};
  request.p = p;
  request.expansion = core::Expansion::kII;
  request.mapping = MappingStrategy::kPublishedFig4;
  return request;
}

// Reference product over the procedural operands (word arithmetic).
std::map<IntVec, std::uint64_t> reference_product(Int m, Int n, Int k, const core::OperandFn& x,
                                                  const core::OperandFn& y) {
  std::map<IntVec, std::uint64_t> z;
  for (Int i = 1; i <= m; ++i) {
    for (Int j = 1; j <= n; ++j) {
      std::uint64_t acc = 0;
      for (Int l = 1; l <= k; ++l) acc += x(IntVec{i, j, l}) * y(IntVec{i, j, l});
      z[IntVec{i, j}] = acc;
    }
  }
  return z;
}

TEST(TiledIdentity, RaggedGridMatchesMonolithicAcrossModes) {
  const Int u = 5, p = 3;
  const DesignRequest base = matmul_request(u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const core::OperandFn x = proc_x(7, bound), y = proc_y(7, bound);

  // Monolithic reference: the full u x u x u array in one pass.
  PlanCache cache(64);
  const PlanPtr mono = cache.get_or_compose(base);
  ASSERT_TRUE(mono->has_mapping());
  const PlanRunResult mono_run = run_plan(*mono, x, y, RunOptions{});
  std::map<IntVec, std::uint64_t> expected;
  for (const auto& [j, v] : mono_run.z) expected[IntVec{j[0], j[1]}] = v;
  EXPECT_EQ(expected, reference_product(u, u, u, x, y));

  // 2x2x2 tiles over extent 5: every dimension is ragged, so the grid
  // has all eight interior/edge/corner shapes.
  const TileOptions tile{2, 2, 2, 0};
  const TiledPlan tiled = compose_tiled(cache, base, tile);
  EXPECT_EQ(tiled.shapes.size(), 8u);
  EXPECT_EQ(tiled.grid_m, 3);
  EXPECT_EQ(tiled.grid_n, 3);
  EXPECT_EQ(tiled.grid_k, 3);
  EXPECT_EQ(tiled.tiles_total, 27);

  struct Mode {
    SlicedMode sliced;
    SlicedMode compiled;
  };
  const std::vector<Mode> modes = {{SlicedMode::kOff, SlicedMode::kOff},
                                   {SlicedMode::kOn, SlicedMode::kOff},
                                   {SlicedMode::kOn, SlicedMode::kOn},
                                   {SlicedMode::kAuto, SlicedMode::kAuto}};
  for (const sim::MemoryMode memory : {sim::MemoryMode::kDense, sim::MemoryMode::kStreaming}) {
    for (const int threads : {1, 4}) {
      for (const Mode& mode : modes) {
        TiledRunOptions options;
        options.threads = threads;
        options.memory = memory;
        options.sliced = mode.sliced;
        options.compiled = mode.compiled;
        const TiledRunResult run = run_tiled(cache, tiled, x, y, options);
        EXPECT_EQ(run.z, expected) << "memory=" << static_cast<int>(memory)
                                   << " threads=" << threads
                                   << " sliced=" << to_string(mode.sliced)
                                   << " compiled=" << to_string(mode.compiled);
        // Counter ledger: every tile executed, every tile in exactly
        // one execution bucket.
        EXPECT_EQ(run.tiles_total, 27);
        EXPECT_EQ(run.tiles_executed, 27);
        EXPECT_EQ(run.compiled_items + run.sliced_items + run.scalar_items, 27);
        if (mode.sliced == SlicedMode::kOff) {
          EXPECT_EQ(run.scalar_items, 27);
        } else if (mode.compiled == SlicedMode::kOn) {
          EXPECT_EQ(run.compiled_items, 27);
        }
      }
    }
  }
}

TEST(TiledIdentity, SmallShardsRespectMaxTilesInFlight) {
  const Int u = 4, p = 3;
  const DesignRequest base = matmul_request(u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const core::OperandFn x = proc_x(3, bound), y = proc_y(3, bound);

  PlanCache cache(64);
  const TiledPlan tiled = compose_tiled(cache, base, TileOptions{2, 2, 2, 0});
  EXPECT_EQ(tiled.shapes.size(), 1u);  // 2 divides 4 in every dimension.
  EXPECT_EQ(tiled.tiles_total, 8);

  TiledRunOptions options;
  options.max_tiles_in_flight = 3;  // Forces ragged shards (3 + 3 + 2).
  const TiledRunResult run = run_tiled(cache, tiled, x, y, options);
  EXPECT_EQ(run.z, reference_product(u, u, u, x, y));
  EXPECT_EQ(run.tiles_executed, 8);
  EXPECT_EQ(run.compiled_items + run.sliced_items + run.scalar_items, 8);
}

TEST(TiledIdentity, SinkReceivesPartialsThatSumToTheProduct) {
  const Int u = 5, p = 3;
  const DesignRequest base = matmul_request(u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const core::OperandFn x = proc_x(11, bound), y = proc_y(11, bound);

  PlanCache cache(64);
  const TiledPlan tiled = compose_tiled(cache, base, TileOptions{3, 3, 2, 0});
  std::map<IntVec, std::uint64_t> acc;
  Int calls = 0;
  const TiledRunResult run =
      run_tiled(cache, tiled, x, y, TiledRunOptions{},
                [&](Int i, Int j, std::uint64_t partial) {
                  acc[IntVec{i, j}] += partial;
                  ++calls;
                });
  EXPECT_TRUE(run.z.empty());  // Sink mode leaves the result map empty.
  EXPECT_EQ(acc, reference_product(u, u, u, x, y));
  // One call per output element per k tile: u * u * grid_k.
  EXPECT_EQ(calls, u * u * tiled.grid_k);
}

TEST(TiledCompose, OneCompositionPerDistinctShape) {
  const DesignRequest base = matmul_request(5, 3);
  PlanCache cache(64);
  const TiledPlan first = compose_tiled(cache, base, TileOptions{2, 2, 2, 0});
  EXPECT_EQ(first.tile_cache_hits, 0);
  EXPECT_EQ(cache.stats().misses, first.shapes.size());
  EXPECT_EQ(cache.stats().hits, 0u);

  // Re-composing the same grid finds every shape resident: no new
  // compositions, all lookups are hits.
  const TiledPlan second = compose_tiled(cache, base, TileOptions{2, 2, 2, 0});
  EXPECT_EQ(second.tile_cache_hits, static_cast<Int>(second.shapes.size()));
  EXPECT_EQ(cache.stats().misses, first.shapes.size());
  EXPECT_EQ(cache.stats().hits, second.shapes.size());

  // Same shapes from a different grid position rendezvous too: a
  // 3x3x3 grid over u=5 shares no shape with the 2x2x2 grid except by
  // coincidence — assert only the cache does not recompose those that
  // match canonically.
  const std::uint64_t misses_before = cache.stats().misses;
  const TiledPlan third = compose_tiled(cache, base, TileOptions{2, 2, 2, 0});
  EXPECT_EQ(cache.stats().misses, misses_before);
  EXPECT_EQ(third.tiles_total, first.tiles_total);
}

TEST(TiledCompose, ExactDivisionYieldsOneShape) {
  PlanCache cache(64);
  const TiledPlan tiled = compose_tiled(cache, matmul_request(6, 3), TileOptions{3, 3, 3, 0});
  EXPECT_EQ(tiled.shapes.size(), 1u);
  EXPECT_EQ(tiled.tiles_total, 8);
  EXPECT_EQ(tiled.shapes.front().tiles, 8);
  EXPECT_EQ(tiled.tile_pes, 3 * 3 * 3 * 3);  // m * n * p^2.
}

TEST(TiledCompose, UnsetTileKDefaultsToFullExtent) {
  PlanCache cache(64);
  const TiledPlan tiled = compose_tiled(cache, matmul_request(5, 3), TileOptions{2, 3, 0, 0});
  EXPECT_EQ(tiled.tile_k, 5);
  EXPECT_EQ(tiled.grid_k, 1);
  EXPECT_EQ(tiled.grid_m, 3);
  EXPECT_EQ(tiled.grid_n, 2);
}

TEST(TiledCompose, MaxPesDerivesLargestSquareTile) {
  const DesignRequest base = matmul_request(8, 3);
  // 150 PEs at p = 3 (9 per word cell) fit 16 cells: a 4x4 tile.
  const TileDims dims = resolve_tile_dims(base, TileOptions{0, 0, 0, 150});
  EXPECT_EQ(dims.m, 4);
  EXPECT_EQ(dims.n, 4);
  EXPECT_EQ(dims.k, 8);

  PlanCache cache(64);
  const TiledPlan tiled = compose_tiled(cache, base, TileOptions{0, 0, 0, 150});
  EXPECT_LE(tiled.tile_pes, 150);
  EXPECT_EQ(tiled.max_pes, 150);
}

TEST(TiledCompose, ResolveRejectsBadOptions) {
  const DesignRequest base = matmul_request(4, 3);
  // Nothing requested.
  EXPECT_THROW(resolve_tile_dims(base, TileOptions{}), PreconditionError);
  // Tile dimension beyond the instance extent.
  EXPECT_THROW(resolve_tile_dims(base, TileOptions{5, 2, 0, 0}), PreconditionError);
  EXPECT_THROW(resolve_tile_dims(base, TileOptions{2, 2, 9, 0}), PreconditionError);
  // Budget below a single 1x1 tile (p^2 = 9 PEs).
  EXPECT_THROW(resolve_tile_dims(base, TileOptions{0, 0, 0, 8}), PreconditionError);
  // Explicit dims overrunning the budget: 3x3x9 = 81 > 80.
  EXPECT_THROW(resolve_tile_dims(base, TileOptions{3, 3, 0, 80}), PreconditionError);
  // Non-tileable kernel.
  DesignRequest conv = base;
  conv.kernel = KernelSpec{"conv", 4, 3, 0, 0};
  EXPECT_THROW(resolve_tile_dims(conv, TileOptions{2, 2, 0, 0}), PreconditionError);
  // Batched kernel.
  DesignRequest batched = base;
  batched.kernel.batch = 2;
  EXPECT_THROW(resolve_tile_dims(batched, TileOptions{2, 2, 0, 0}), PreconditionError);
  // Structure-only requests have nothing to run.
  DesignRequest structure_only = base;
  structure_only.mapping = MappingStrategy::kStructureOnly;
  EXPECT_THROW(resolve_tile_dims(structure_only, TileOptions{2, 2, 0, 0}), PreconditionError);
}

TEST(TiledArch, MultiplyTiledMatchesMonolithicBothMappings) {
  const Int u = 4, p = 3;
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const arch::WordMatrix x = arch::WordMatrix::random(u, bound, 21);
  const arch::WordMatrix y = arch::WordMatrix::random(u, bound, 22);
  const arch::WordMatrix expected = arch::WordMatrix::multiply_reference(x, y);

  for (const auto which : {arch::MatmulMapping::kFig4, arch::MatmulMapping::kFig5}) {
    const arch::BitLevelMatmulArray array(which, u, p);
    EXPECT_EQ(array.multiply(x, y).z, expected);

    const arch::TiledMatmulResult tiled =
        arch::multiply_tiled(which, p, x, y, TileOptions{3, 3, 2, 0});
    EXPECT_EQ(tiled.z, expected);
    EXPECT_EQ(tiled.tiles_total, 2 * 2 * 2);
    EXPECT_EQ(tiled.tiles_executed, tiled.tiles_total);
    EXPECT_EQ(tiled.compiled_items + tiled.sliced_items + tiled.scalar_items,
              tiled.tiles_executed);
    EXPECT_GT(tiled.tile_pes, 0);
  }
}

TEST(TiledBudget, BoundedArrayStreamsAnInstanceManyPassesLarge) {
  // A 32x32x32 matmul at p = 2 under a 64-PE budget: the derived tile
  // is 4x4 (16 cells x 4 PEs), so the virtual array is 64x smaller
  // than the monolithic 32*32*4 = 4096-PE array and the grid streams
  // 8 * 8 = 64 tiles through it per k block.
  const Int u = 32, p = 2;
  DesignRequest base = matmul_request(u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const core::OperandFn x = proc_x(5, bound), y = proc_y(5, bound);

  PlanCache cache(64);
  const TiledPlan tiled = compose_tiled(cache, base, TileOptions{0, 0, 0, 64});
  EXPECT_EQ(tiled.tile_m, 4);
  EXPECT_EQ(tiled.tile_n, 4);
  EXPECT_LE(tiled.tile_pes, 64);
  EXPECT_EQ(tiled.tiles_total, 8 * 8);

  const TiledRunResult run = run_tiled(cache, tiled, x, y, TiledRunOptions{});
  EXPECT_EQ(run.tiles_executed, 64);
  EXPECT_EQ(run.z, reference_product(u, u, u, x, y));
}

TEST(TiledCacheBytes, ResidentBytesTrackComposedPlans) {
  PlanCache cache(64);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  const TiledPlan tiled = compose_tiled(cache, matmul_request(5, 3), TileOptions{2, 2, 2, 0});

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, tiled.shapes.size());
  EXPECT_GT(stats.resident_bytes, 0u);

  const std::vector<PlanCacheEntryStats> entries = cache.entry_stats();
  ASSERT_EQ(entries.size(), stats.size);
  std::uint64_t total = 0;
  for (const PlanCacheEntryStats& entry : entries) {
    EXPECT_FALSE(entry.key.empty());
    EXPECT_GT(entry.bytes, 0u);  // Every entry is ready: bytes stamped.
    total += entry.bytes;
  }
  EXPECT_EQ(total, stats.resident_bytes);
  // A plan carrying a compiled schedule dwarfs the fixed struct size.
  EXPECT_GT(stats.resident_bytes, entries.size() * sizeof(DesignPlan));

  cache.clear();
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_TRUE(cache.entry_stats().empty());
}

}  // namespace
}  // namespace bitlevel::pipeline
