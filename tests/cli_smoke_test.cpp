// End-to-end smoke matrix over the bitlevel-design CLI: every action x
// kernel x expansion combination must exit cleanly, and every --json
// document must be syntactically valid JSON (RFC 8259). Also locks in
// the strict argument parsing: garbage and out-of-range values exit 2
// with a usage message instead of silently becoming 0.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace bitlevel {
namespace {

#ifndef BITLEVEL_DESIGN_BIN_PATH
#error "BITLEVEL_DESIGN_BIN_PATH must point at the bitlevel-design binary"
#endif

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult run_cli_redirect(const std::string& args, const char* redirect) {
  const std::string command = std::string(BITLEVEL_DESIGN_BIN_PATH) + " " + args + " " + redirect;
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0) result.out.append(buf, got);
  const int status = pclose(pipe);
  result.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return result;
}

RunResult run_cli(const std::string& args) { return run_cli_redirect(args, "2>/dev/null"); }

/// Capture stderr too — for asserting on usage/error text.
RunResult run_cli_merged(const std::string& args) { return run_cli_redirect(args, "2>&1"); }

/// Small instances of every kernel; sizes chosen so the whole matrix
/// stays fast even under sanitizers.
const std::vector<std::string> kKernels = {
    "--kernel matmul --u 2",          "--kernel matmul_rect --u 2 --v 2 --w 2",
    "--kernel conv --u 3 --v 2",      "--kernel matvec --u 2 --v 2",
    "--kernel transform --u 2",       "--kernel scalar --u 3",
};

TEST(CliSmokeTest, StructureMatrixEmitsValidJson) {
  for (const auto& kernel : kKernels) {
    for (const char* expansion : {"I", "II"}) {
      const std::string args =
          kernel + " --p 3 --expansion " + expansion + " --action structure --json";
      const RunResult r = run_cli(args);
      EXPECT_EQ(r.exit_code, 0) << args;
      EXPECT_TRUE(json_valid(r.out)) << args << "\n" << r.out;
    }
  }
}

TEST(CliSmokeTest, VerifyMatrixProvesTheorem31) {
  for (const auto& kernel : kKernels) {
    for (const char* expansion : {"I", "II"}) {
      const std::string args =
          kernel + " --p 3 --expansion " + expansion + " --action verify --json";
      const RunResult r = run_cli(args);
      EXPECT_EQ(r.exit_code, 0) << args;
      EXPECT_TRUE(json_valid(r.out)) << args << "\n" << r.out;
      EXPECT_NE(r.out.find("\"ok\":true"), std::string::npos) << args << "\n" << r.out;
    }
  }
}

TEST(CliSmokeTest, SimulateBothMemoryModesMatchReference) {
  for (const char* memory : {"dense", "streaming"}) {
    const std::string args = std::string("--kernel matmul --u 2 --p 4 --action simulate --json") +
                             " --memory " + memory;
    const RunResult r = run_cli(args);
    EXPECT_EQ(r.exit_code, 0) << args;
    EXPECT_TRUE(json_valid(r.out)) << args << "\n" << r.out;
    EXPECT_NE(r.out.find("\"correct\":true"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("\"missing_reference\":0"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find(std::string("\"memory\":\"") + memory + "\""), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("\"peak_live_slots\":"), std::string::npos) << r.out;
  }
}

TEST(CliSmokeTest, StreamingSimulationOfExpansionI) {
  const RunResult r = run_cli(
      "--kernel scalar --u 4 --p 4 --expansion I --action simulate --memory streaming --json");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(json_valid(r.out)) << r.out;
  EXPECT_NE(r.out.find("\"correct\":true"), std::string::npos) << r.out;
}

// The batch action: every sliced mode exits 0 with valid JSON, items
// all match their word-level references, and the counters account for
// every item. --sliced off must report only scalar items; on packs all
// of them into one lane group — compiled by default, interpreted when
// --compiled off pins the 64-lane engine.
TEST(CliSmokeTest, BatchActionSlicedModes) {
  for (const char* memory : {"dense", "streaming"}) {
    for (const char* sliced : {"on", "off", "auto"}) {
      const std::string args = std::string("--kernel matmul --u 2 --p 4 --action batch") +
                               " --batch 5 --sliced " + sliced + " --memory " + memory +
                               " --json";
      const RunResult r = run_cli(args);
      EXPECT_EQ(r.exit_code, 0) << args;
      EXPECT_TRUE(json_valid(r.out)) << args << "\n" << r.out;
      EXPECT_NE(r.out.find("\"correct\":true"), std::string::npos) << args << "\n" << r.out;
      EXPECT_NE(r.out.find(std::string("\"mode\":\"") + sliced + "\""), std::string::npos)
          << r.out;
      if (std::string(sliced) == "off") {
        EXPECT_NE(r.out.find("\"scalar_items\":5"), std::string::npos) << r.out;
        EXPECT_NE(r.out.find("\"compiled_items\":0"), std::string::npos) << r.out;
        EXPECT_NE(r.out.find("\"sliced_items\":0"), std::string::npos) << r.out;
      } else {
        EXPECT_NE(r.out.find("\"compiled_groups\":1"), std::string::npos) << r.out;
        EXPECT_NE(r.out.find("\"compiled_items\":5"), std::string::npos) << r.out;
        EXPECT_NE(r.out.find("\"sliced_items\":0"), std::string::npos) << r.out;
        EXPECT_NE(r.out.find("\"scalar_items\":0"), std::string::npos) << r.out;
      }
    }
  }
}

// --compiled off pins the interpreted engine (items land in the sliced
// bucket), and explicit --lanes widths ride the compiled path with the
// same correct:true verdict. Bad widths exit 2 at the parser.
TEST(CliSmokeTest, BatchActionCompiledFlagAndLaneWidths) {
  const std::string base = "--kernel matmul --u 2 --p 4 --action batch --batch 5 --json";
  const RunResult interpreted = run_cli(base + " --compiled off");
  EXPECT_EQ(interpreted.exit_code, 0) << interpreted.out;
  EXPECT_NE(interpreted.out.find("\"correct\":true"), std::string::npos) << interpreted.out;
  EXPECT_NE(interpreted.out.find("\"compiled\":\"off\""), std::string::npos) << interpreted.out;
  EXPECT_NE(interpreted.out.find("\"compiled_items\":0"), std::string::npos) << interpreted.out;
  EXPECT_NE(interpreted.out.find("\"sliced_items\":5"), std::string::npos) << interpreted.out;

  for (const char* lanes : {"64", "128", "256", "512"}) {
    const RunResult r = run_cli(base + " --compiled on --lanes " + lanes);
    EXPECT_EQ(r.exit_code, 0) << lanes << "\n" << r.out;
    EXPECT_NE(r.out.find("\"correct\":true"), std::string::npos) << lanes << "\n" << r.out;
    EXPECT_NE(r.out.find(std::string("\"lanes\":") + lanes), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("\"compiled_items\":5"), std::string::npos) << r.out;
  }

  for (const char* args : {"--action batch --lanes 100", "--action batch --lanes -64",
                           "--action batch --compiled maybe"}) {
    EXPECT_EQ(run_cli(args).exit_code, 2) << args;
  }
}

TEST(CliSmokeTest, BatchActionTextOutputAndBadFlagValues) {
  const RunResult text = run_cli("--kernel conv --u 3 --v 2 --p 3 --action batch --batch 3");
  EXPECT_EQ(text.exit_code, 0);
  EXPECT_NE(text.out.find("MATCH"), std::string::npos) << text.out;
  EXPECT_NE(text.out.find("compiled group"), std::string::npos) << text.out;
  EXPECT_NE(text.out.find("sliced group"), std::string::npos) << text.out;

  for (const char* args : {"--action batch --batch 0", "--action batch --batch nope",
                           "--action batch --sliced maybe"}) {
    EXPECT_EQ(run_cli(args).exit_code, 2) << args;
  }
}

TEST(CliSmokeTest, DesignOptimalAnimateActions) {
  for (const char* args : {"--kernel scalar --u 4 --p 3 --action design --json",
                           "--kernel scalar --u 5 --p 4 --action optimal --json"}) {
    const RunResult r = run_cli(args);
    EXPECT_EQ(r.exit_code, 0) << args;
    EXPECT_TRUE(json_valid(r.out)) << args << "\n" << r.out;
  }
  const RunResult animate = run_cli("--kernel scalar --u 4 --p 3 --action animate");
  EXPECT_EQ(animate.exit_code, 0);
  EXPECT_NE(animate.out.find("cycle"), std::string::npos);
}

TEST(CliSmokeTest, ListKernelsIsRegistryBacked) {
  const RunResult text = run_cli("--list-kernels");
  EXPECT_EQ(text.exit_code, 0);
  for (const char* name : {"matmul", "matmul_rect", "conv", "matvec", "transform", "scalar"}) {
    EXPECT_NE(text.out.find(name), std::string::npos) << name << "\n" << text.out;
  }

  const RunResult json = run_cli("--list-kernels --json");
  EXPECT_EQ(json.exit_code, 0);
  EXPECT_TRUE(json_valid(json.out)) << json.out;
  EXPECT_NE(json.out.find("\"kernels\""), std::string::npos) << json.out;
  EXPECT_NE(json.out.find("\"arity\""), std::string::npos) << json.out;
  EXPECT_NE(json.out.find("\"sliceable\":true"), std::string::npos) << json.out;
}

TEST(CliSmokeTest, UnknownKernelAndActionNameTheAllowedSet) {
  const RunResult kernel = run_cli_merged("--kernel nope --action structure");
  EXPECT_EQ(kernel.exit_code, 2);
  EXPECT_NE(kernel.out.find("unknown kernel"), std::string::npos) << kernel.out;
  // The error names the registry's full allowed set.
  for (const char* name : {"matmul", "matmul_rect", "conv", "matvec", "transform", "scalar"}) {
    EXPECT_NE(kernel.out.find(name), std::string::npos) << name << "\n" << kernel.out;
  }

  const RunResult action = run_cli_merged("--kernel matmul --action bogus");
  EXPECT_EQ(action.exit_code, 2);
  EXPECT_NE(action.out.find("unknown action"), std::string::npos) << action.out;
  for (const char* name : {"structure", "verify", "design", "simulate", "optimal", "animate"}) {
    EXPECT_NE(action.out.find(name), std::string::npos) << name << "\n" << action.out;
  }
}

TEST(CliSmokeTest, JsonDocumentsCarryPlanCacheCounters) {
  for (const char* args : {"--kernel matmul --u 2 --p 3 --action structure --json",
                           "--kernel conv --u 3 --v 2 --p 3 --action verify --json",
                           "--kernel scalar --u 4 --p 3 --action design --json",
                           "--kernel scalar --u 4 --p 3 --action simulate --json",
                           "--kernel scalar --u 4 --p 3 --action optimal --json"}) {
    const RunResult r = run_cli(args);
    EXPECT_EQ(r.exit_code, 0) << args;
    EXPECT_TRUE(json_valid(r.out)) << args << "\n" << r.out;
    EXPECT_NE(r.out.find("\"plan_cache\""), std::string::npos) << args << "\n" << r.out;
    EXPECT_NE(r.out.find("\"misses\":"), std::string::npos) << args << "\n" << r.out;
    EXPECT_NE(r.out.find("\"hits\":"), std::string::npos) << args << "\n" << r.out;
  }
}

TEST(CliSmokeTest, FaultCampaignTextAndJson) {
  const std::string base =
      "--kernel matmul --u 2 --p 3 --action fault-campaign "
      "--fault-kind bit-flip,stuck-at-1 --fault-rate 0.01,0.05 --seed 5";
  const RunResult text = run_cli(base);
  EXPECT_EQ(text.exit_code, 0) << text.out;
  for (const char* column : {"kind", "rate", "detected", "recovered", "degraded", "silent"}) {
    EXPECT_NE(text.out.find(column), std::string::npos) << column << "\n" << text.out;
  }

  const RunResult json = run_cli(base + " --json");
  EXPECT_EQ(json.exit_code, 0) << json.out;
  EXPECT_TRUE(json_valid(json.out)) << json.out;
  for (const char* key : {"\"campaign\"", "\"reports\"", "\"silent_corruption\"",
                          "\"faults_detected\"", "\"abft\"", "\"plan_cache\""}) {
    EXPECT_NE(json.out.find(key), std::string::npos) << key << "\n" << json.out;
  }
}

TEST(CliSmokeTest, FaultCampaignJsonByteIdenticalAcrossExecutionModes) {
  // The acceptance criterion of the fault subsystem, end to end through
  // the CLI: the seeded campaign document contains no execution-knob
  // fields and must not change with thread count or memory mode.
  const std::string base =
      "--kernel matmul --u 2 --p 3 --action fault-campaign --fault-rate 0.05 --seed 9 --json";
  const RunResult reference = run_cli(base + " --threads 1 --memory dense");
  ASSERT_EQ(reference.exit_code, 0);
  ASSERT_TRUE(json_valid(reference.out)) << reference.out;
  for (const char* modes : {"--threads 4 --memory dense", "--threads 1 --memory streaming",
                            "--threads 4 --memory streaming"}) {
    const RunResult r = run_cli(base + " " + modes);
    EXPECT_EQ(r.exit_code, 0) << modes;
    EXPECT_EQ(r.out, reference.out) << modes;
  }
}

TEST(CliSmokeTest, FaultCampaignRejectsBadFlagValues) {
  for (const char* args : {
           "--kernel matmul --u 2 --action fault-campaign --fault-rate 1.5",
           "--kernel matmul --u 2 --action fault-campaign --fault-rate abc",
           "--kernel matmul --u 2 --action fault-campaign --fault-kind melted",
           "--kernel matmul --u 2 --action fault-campaign --spares -1",
           "--kernel matmul --u 2 --action fault-campaign --retries -1",
       }) {
    EXPECT_EQ(run_cli(args).exit_code, 2) << args;
  }
}

TEST(CliSmokeTest, StrictParsingRejectsGarbage) {
  // Each of these was silently accepted by atoll/atoi (becoming 0 or a
  // negative size) and crashed deep inside the library; now they all
  // exit 2 at the argument parser.
  for (const char* args : {
           "--p abc --action structure",
           "--u -3 --action structure",
           "--u 0 --action structure",
           "--u 2x --action structure",
           "--p 64 --action structure",
           "--p 0 --action structure",
           "--threads -2 --action structure",
           "--seed -1 --action structure",
           "--memory bogus --action simulate",
           "--u 99999999999999999999 --action structure",
       }) {
    EXPECT_EQ(run_cli(args).exit_code, 2) << args;
  }
}

TEST(CliSmokeTest, TiledActionTextAndJson) {
  const RunResult text = run_cli("--kernel matmul --u 5 --p 3 --action tiled --tile 2");
  EXPECT_EQ(text.exit_code, 0) << text.out;
  EXPECT_NE(text.out.find("MATCH"), std::string::npos) << text.out;

  const RunResult json =
      run_cli("--kernel matmul --u 5 --p 3 --action tiled --tile 2,2,2 --json");
  ASSERT_EQ(json.exit_code, 0) << json.out;
  ASSERT_TRUE(json_valid(json.out)) << json.out;
  for (const char* member : {"\"action\":\"tiled\"", "\"tiles_total\":27", "\"tiles_executed\":27",
                             "\"tile_cache_hits\":", "\"grid_m\":3", "\"shapes\":8",
                             "\"correct\":true", "\"plan_cache\"", "\"resident_bytes\":"}) {
    EXPECT_NE(json.out.find(member), std::string::npos) << member << "\n" << json.out;
  }

  // A PE budget instead of explicit dims derives the largest square tile.
  const RunResult budget =
      run_cli("--kernel matmul --u 8 --p 3 --action tiled --max-pes 150 --json");
  EXPECT_EQ(budget.exit_code, 0) << budget.out;
  EXPECT_NE(budget.out.find("\"tile_pes\":144"), std::string::npos) << budget.out;
  EXPECT_NE(budget.out.find("\"max_pes\":150"), std::string::npos) << budget.out;
}

TEST(CliSmokeTest, TiledRejectsBadFlagCombinations) {
  // Parse-time hardening: all exit 2 with a usage message.
  for (const char* args : {
           "--kernel matmul --u 4 --p 3 --action tiled --tile 0",
           "--kernel matmul --u 4 --p 3 --action tiled --tile 2,0",
           "--kernel matmul --u 4 --p 3 --action tiled --tile abc",
           "--kernel matmul --u 4 --p 3 --action tiled --tile 1,2,3,4",
           "--kernel matmul --u 4 --p 3 --action tiled --max-pes 0",
           "--kernel matmul --u 4 --p 3 --action tiled",
           "--kernel matmul --u 4 --p 3 --action batch --tile 2",
           "--kernel conv --u 4 --v 3 --p 3 --action tiled --tile 2",
       }) {
    EXPECT_EQ(run_cli(args).exit_code, 2) << args;
  }
  // Tile dims larger than the instance survive parsing (extent checks
  // need the kernel registry) and fail as a typed precondition error.
  const RunResult r =
      run_cli_merged("--kernel matmul --u 4 --p 3 --action tiled --tile 9");
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("tile_m (9) exceeds the instance extent m (4)"), std::string::npos)
      << r.out;
}

}  // namespace
}  // namespace bitlevel
