// Support utilities: error macros, formatting, deterministic RNG.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "support/error.hpp"
#include "support/format.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace bitlevel {
namespace {

TEST(ErrorTest, RequireMacroCarriesContext) {
  try {
    BL_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, Hierarchy) {
  EXPECT_THROW(throw OverflowError("x"), Error);
  EXPECT_THROW(throw NotFoundError("x"), Error);
  EXPECT_THROW(throw PreconditionError("x"), std::runtime_error);
}

TEST(FormatTest, Vectors) {
  EXPECT_EQ(format_vector({}), "[]");
  EXPECT_EQ(format_vector({1, -2, 3}), "[1, -2, 3]");
}

TEST(FormatTest, MatrixAlignment) {
  const std::string s = format_matrix({1, -10, 100, 2, 3, 4}, 2, 3);
  EXPECT_EQ(s, "[   1 -10 100 ]\n[   2   3   4 ]");
  EXPECT_THROW(format_matrix({1, 2, 3}, 2, 2), PreconditionError);
}

TEST(FormatTest, TextTable) {
  TextTable t({"name", "cycles"});
  t.add_row({"fig4", "19"});
  t.add_row({"fig5", "33"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name |"), std::string::npos);
  EXPECT_NE(s.find("| fig4 | 19"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Xoshiro256 c(43);
  EXPECT_NE(a(), c());
}

TEST(RngTest, UniformRespectsBounds) {
  Xoshiro256 rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BitsMasksWidth) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.bits(5), 32u);
}

TEST(JsonTest, NestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("fig4");
  w.key("cycles").value(19);
  w.key("ok").value(true);
  w.key("pi").value(std::vector<std::int64_t>{1, 1, 1, 2, 1});
  w.key("nested").begin_object().key("utilization").value(0.25).end_object();
  w.key("list").begin_array().value("a").value(2).end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"fig4","cycles":19,"ok":true,"pi":[1,1,1,2,1],)"
            R"("nested":{"utilization":0.25},"list":["a",2]})");
}

TEST(JsonTest, Escaping) {
  JsonWriter w;
  w.value(std::string("a\"b\\c\nd\te") + '\x01');
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonTest, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), PreconditionError);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), PreconditionError);  // wrong scope
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.str(), PreconditionError);  // unbalanced at str()
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), PreconditionError);  // two top-level values
  }
}

TEST(JsonTest, DoublesRoundTripAndStayValidJson) {
  // %.6g used to truncate (0.1 -> "0.1" was fine, but 1/3 lost digits)
  // and to emit locale decimal separators. Every finite double must now
  // parse back to the same bits.
  for (double v : {0.1, 1.0 / 3.0, 0.1 + 0.2, 1e300, 5e-324, -2.5, 0.0, 1048576.0}) {
    JsonWriter w;
    w.value(v);
    const std::string text = w.str();
    EXPECT_TRUE(json_valid(text)) << text;
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    EXPECT_EQ(text.find(','), std::string::npos) << text;  // locale-proof
  }
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  // %.6g emitted "inf" / "nan" — not JSON (RFC 8259 has no such
  // literals), so any consumer's parser rejected the whole document.
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (double v : {inf, -inf, nan}) {
    JsonWriter w;
    w.begin_object();
    w.key("utilization").value(v);
    w.end_object();
    EXPECT_EQ(w.str(), R"({"utilization":null})");
    EXPECT_TRUE(json_valid(w.str()));
  }
}

TEST(JsonValidTest, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(json_valid(R"({"a":[1,2.5,-3e2],"b":{"c":null},"d":"x\nA"})"));
  EXPECT_TRUE(json_valid("  [true, false, null]  "));
  EXPECT_TRUE(json_valid("0"));
  EXPECT_TRUE(json_valid(R"("just a string")"));
  EXPECT_TRUE(json_valid("-0.5e+10"));
}

TEST(JsonValidTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid(R"({"a":1,})"));
  EXPECT_FALSE(json_valid("01"));        // leading zero
  EXPECT_FALSE(json_valid("1."));        // bare decimal point
  EXPECT_FALSE(json_valid("inf"));       // the old %.6g output
  EXPECT_FALSE(json_valid("nan"));
  EXPECT_FALSE(json_valid("{} {}"));     // two top-level values
  EXPECT_FALSE(json_valid("\"unterminated"));
  EXPECT_FALSE(json_valid("\"bad \\x escape\""));
  EXPECT_FALSE(json_valid(R"({"a" 1})"));  // missing colon
}

}  // namespace
}  // namespace bitlevel
