// Support utilities: error macros, formatting, deterministic RNG.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/format.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace bitlevel {
namespace {

TEST(ErrorTest, RequireMacroCarriesContext) {
  try {
    BL_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, Hierarchy) {
  EXPECT_THROW(throw OverflowError("x"), Error);
  EXPECT_THROW(throw NotFoundError("x"), Error);
  EXPECT_THROW(throw PreconditionError("x"), std::runtime_error);
}

TEST(FormatTest, Vectors) {
  EXPECT_EQ(format_vector({}), "[]");
  EXPECT_EQ(format_vector({1, -2, 3}), "[1, -2, 3]");
}

TEST(FormatTest, MatrixAlignment) {
  const std::string s = format_matrix({1, -10, 100, 2, 3, 4}, 2, 3);
  EXPECT_EQ(s, "[   1 -10 100 ]\n[   2   3   4 ]");
  EXPECT_THROW(format_matrix({1, 2, 3}, 2, 2), PreconditionError);
}

TEST(FormatTest, TextTable) {
  TextTable t({"name", "cycles"});
  t.add_row({"fig4", "19"});
  t.add_row({"fig5", "33"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name |"), std::string::npos);
  EXPECT_NE(s.find("| fig4 | 19"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Xoshiro256 c(43);
  EXPECT_NE(a(), c());
}

TEST(RngTest, UniformRespectsBounds) {
  Xoshiro256 rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BitsMasksWidth) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.bits(5), 32u);
}

TEST(JsonTest, NestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("fig4");
  w.key("cycles").value(19);
  w.key("ok").value(true);
  w.key("pi").value(std::vector<std::int64_t>{1, 1, 1, 2, 1});
  w.key("nested").begin_object().key("utilization").value(0.25).end_object();
  w.key("list").begin_array().value("a").value(2).end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"fig4","cycles":19,"ok":true,"pi":[1,1,1,2,1],)"
            R"("nested":{"utilization":0.25},"list":["a",2]})");
}

TEST(JsonTest, Escaping) {
  JsonWriter w;
  w.value(std::string("a\"b\\c\nd\te") + '\x01');
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonTest, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), PreconditionError);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), PreconditionError);  // wrong scope
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.str(), PreconditionError);  // unbalanced at str()
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), PreconditionError);  // two top-level values
  }
}

}  // namespace
}  // namespace bitlevel
