// PlanCache concurrency and bounding. The single-composition guarantee
// — exactly one Theorem 3.1 expansion and one mapping stage per
// distinct key per process — must hold under a many-thread hammer
// (this file is part of the TSan CI matrix), and the LRU bound must
// evict cleanly without ever duplicating or losing an in-flight
// composition. Failure paths must not poison a key: a later request
// retries the composition.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "pipeline/cache.hpp"
#include "support/error.hpp"

namespace bitlevel::pipeline {
namespace {

using math::Int;

DesignRequest scalar_request(Int u, MappingStrategy strategy = MappingStrategy::kStructureOnly) {
  DesignRequest request;
  request.kernel = KernelSpec{"scalar", u, 0, 0, 0};
  request.p = 3;
  request.mapping = strategy;
  return request;
}

TEST(PlanCacheTest, ConcurrentHammerComposesEachKeyOnce) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 40;
  constexpr Int kKeys = 5;
  PlanCache cache(16);

  std::vector<std::vector<PlanPtr>> seen(kThreads, std::vector<PlanPtr>(kKeys));
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int iter = 0; iter < kIterations; ++iter) {
        const Int u = 2 + (iter + t) % kKeys;
        const PlanPtr plan = cache.get_or_compose(scalar_request(u));
        if (plan == nullptr || plan->structure == nullptr) {
          failed = true;
          continue;
        }
        auto& slot = seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(u - 2)];
        if (slot == nullptr) slot = plan;
        if (slot.get() != plan.get()) failed = true;  // key re-composed
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(failed.load());

  // Every thread saw the SAME plan object per key...
  for (Int u = 0; u < kKeys; ++u) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(u)].get(),
                seen[0][static_cast<std::size_t>(u)].get())
          << "key " << u << " thread " << t;
    }
  }
  // ...and the counters prove exactly one composition per key.
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(stats.size, static_cast<std::size_t>(kKeys));
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PlanCacheTest, LruEvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  const PlanPtr a = cache.get_or_compose(scalar_request(2));
  const PlanPtr b = cache.get_or_compose(scalar_request(3));
  // Touch a so b becomes least recently used.
  EXPECT_EQ(cache.get_or_compose(scalar_request(2)).get(), a.get());
  const PlanPtr c = cache.get_or_compose(scalar_request(4));

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_NE(cache.peek(a->key), nullptr);
  EXPECT_EQ(cache.peek(b->key), nullptr);  // evicted
  EXPECT_NE(cache.peek(c->key), nullptr);

  // Re-requesting the evicted key composes again (a fresh miss), while
  // the evicted caller's shared_ptr stays valid on its own.
  EXPECT_EQ(b->request.kernel.u, 3);
  const PlanPtr b2 = cache.get_or_compose(scalar_request(3));
  EXPECT_EQ(b2->key, b->key);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(PlanCacheTest, PeekDoesNotComposeOrCount) {
  PlanCache cache(4);
  const std::string key = canonical_key(scalar_request(5));
  EXPECT_EQ(cache.peek(key), nullptr);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0u);
  const PlanPtr plan = cache.get_or_compose(scalar_request(5));
  EXPECT_EQ(cache.peek(key).get(), plan.get());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PlanCacheTest, FailedCompositionDoesNotPoisonTheKey) {
  PlanCache cache(4);
  // scalar is 1-D at word level — the published matmul mapping cannot
  // apply, so composing with a published strategy throws.
  const DesignRequest bad = scalar_request(4, MappingStrategy::kPublishedFig4);
  EXPECT_THROW(cache.get_or_compose(bad), PreconditionError);
  // The failure is not cached: a retry attempts the composition again
  // (and fails the same way, each attempt counted as a miss).
  EXPECT_THROW(cache.get_or_compose(bad), PreconditionError);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(PlanCacheTest, ClearResetsPlansAndCounters) {
  PlanCache cache(4);
  cache.get_or_compose(scalar_request(2));
  cache.get_or_compose(scalar_request(2));
  cache.clear();
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(cache.peek(canonical_key(scalar_request(2))), nullptr);
}

TEST(PlanCacheTest, SetCapacityShrinksByEvicting) {
  PlanCache cache(8);
  for (Int u = 2; u <= 6; ++u) cache.get_or_compose(scalar_request(u));
  EXPECT_EQ(cache.stats().size, 5u);
  cache.set_capacity(2);
  EXPECT_EQ(cache.stats().size, 2u);
  EXPECT_EQ(cache.stats().capacity, 2u);
  EXPECT_GE(cache.stats().evictions, 3u);
}

TEST(PlanCacheTest, GlobalCacheIsSharedAndStable) {
  PlanCache& a = global_plan_cache();
  PlanCache& b = global_plan_cache();
  EXPECT_EQ(&a, &b);
  const PlanPtr plan = a.get_or_compose(scalar_request(6));
  EXPECT_EQ(b.peek(plan->key).get(), plan.get());
}

}  // namespace
}  // namespace bitlevel::pipeline
