// Randomized property sweep over the whole core: for random word-level
// models (random rectangular domains, random lexicographically-positive
// pipelining vectors), the Theorem 3.1 composition must match trace
// ground truth AND the bit-level evaluator must reproduce word-level
// arithmetic — for both expansions.
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/expansion.hpp"
#include "core/verify.hpp"
#include "ir/kernels.hpp"
#include "support/rng.hpp"

namespace bitlevel {
namespace {

using core::Expansion;

/// A random model: n in [1,3], extents in [2,4], h vectors drawn from
/// nonzero lex-positive {-1,0,1} vectors (h1/h2 sometimes absent).
ir::WordLevelModel random_model(Xoshiro256& rng) {
  const std::size_t n = 1 + rng() % 3;
  math::IntVec lo(n), hi(n);
  for (std::size_t i = 0; i < n; ++i) {
    lo[i] = rng.uniform(-1, 2);
    hi[i] = lo[i] + rng.uniform(1, 3);
  }
  auto random_h = [&]() {
    while (true) {
      math::IntVec h(n);
      for (auto& v : h) v = rng.uniform(-1, 1);
      if (!math::is_zero(h) && math::lex_positive(h)) return h;
    }
  };
  ir::WordLevelModel m{ir::IndexSet(lo, hi), std::nullopt, std::nullopt, random_h(),
                       "random", {}};
  if (rng() % 4 != 0) m.h1 = random_h();
  if (rng() % 4 != 0) m.h2 = random_h();
  m.validate();
  return m;
}

class CorePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorePropertyTest, CompositionMatchesTraceOnRandomModels) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 12; ++trial) {
    const ir::WordLevelModel m = random_model(rng);
    const math::Int p = 2 + static_cast<math::Int>(rng() % 2);
    for (Expansion e : {Expansion::kI, Expansion::kII}) {
      const auto report = core::verify_expansion(m, p, e);
      EXPECT_TRUE(report.ok()) << "domain " << m.domain.to_string() << " h3 "
                               << math::to_string(*m.h3) << " p " << p << "\n"
                               << report.match.to_string();
    }
  }
}

TEST_P(CorePropertyTest, EvaluatorMatchesReferenceOnRandomModels) {
  Xoshiro256 rng(GetParam() + 500);
  for (int trial = 0; trial < 10; ++trial) {
    const ir::WordLevelModel m = random_model(rng);
    const math::Int p = 4 + static_cast<math::Int>(rng() % 3);
    for (Expansion e : {Expansion::kI, Expansion::kII}) {
      const std::uint64_t bound = core::max_safe_operand(p, core::max_chain_length(m), e);
      if (bound == 0) continue;
      std::map<math::IntVec, std::uint64_t> xs, ys;
      m.domain.for_each([&](const math::IntVec& j) {
        xs[j] = rng() % (bound + 1);
        ys[j] = rng() % (bound + 1);
        return true;
      });
      const core::OperandFn xf = [&](const math::IntVec& j) { return xs.at(j); };
      const core::OperandFn yf = [&](const math::IntVec& j) { return ys.at(j); };
      const auto got = core::evaluate_bitlevel(core::expand(m, p, e), xf, yf);
      const auto ref = core::evaluate_word_reference(m, xf, yf);
      ASSERT_FALSE(got.z.empty());
      for (const auto& [j, v] : got.z) {
        ASSERT_EQ(v, ref.at(j)) << "domain " << m.domain.to_string() << " at "
                                << math::to_string(j);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorePropertyTest,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u, 60u));

// Rectangular matmul: non-cubic boxes through the whole pipeline.
TEST(RectMatmulTest, ExpansionAndEvaluation) {
  const auto m = ir::kernels::matmul_rect(2, 4, 3);
  EXPECT_EQ(m.domain.size(), 24);
  const auto report = core::verify_expansion(m, 3, Expansion::kII);
  EXPECT_TRUE(report.ok()) << report.match.to_string();

  const math::Int p = 6;
  const std::uint64_t bound = core::max_safe_operand(p, 3, Expansion::kII);
  Xoshiro256 rng(77);
  std::map<math::IntVec, std::uint64_t> xs, ys;
  m.domain.for_each([&](const math::IntVec& j) {
    xs[j] = rng() % (bound + 1);
    ys[j] = rng() % (bound + 1);
    return true;
  });
  const core::OperandFn xf = [&](const math::IntVec& j) { return xs.at(j); };
  const core::OperandFn yf = [&](const math::IntVec& j) { return ys.at(j); };
  const auto got = core::evaluate_bitlevel(core::expand(m, p, Expansion::kII), xf, yf);
  const auto ref = core::evaluate_word_reference(m, xf, yf);
  for (const auto& [j, v] : got.z) EXPECT_EQ(v, ref.at(j));
}

}  // namespace
}  // namespace bitlevel
