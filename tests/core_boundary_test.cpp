// The accumulation-boundary region { j : j + h3 outside J_w } — where
// the accumulation chain ends and Expansion I performs its deferred
// reduction. The paper states the boundary as j_n = u_n because every
// published kernel accumulates along the last axis with unit stride
// (h3 = e_n); the library's region is the generalized set, so these
// tests pin both facts: the reduction to the paper's hyperplane for
// every registry kernel, and agreement with the brute-force membership
// test for strided and multi-component h3.
#include <gtest/gtest.h>

#include "core/expansion.hpp"
#include "ir/kernels.hpp"
#include "support/error.hpp"

namespace bitlevel::core {
namespace {

using math::Int;
using math::IntVec;

/// j + h3, componentwise.
IntVec step(const IntVec& j, const IntVec& h3) {
  IntVec next = j;
  for (std::size_t k = 0; k < next.size(); ++k) next[k] += h3[k];
  return next;
}

TEST(BoundaryTest, RegistryKernelsReduceToPaperHyperplane) {
  // Every registry kernel accumulates with h3 = e_n (last-axis unit
  // stride), so the generalized region must be exactly the paper's
  // j_n = u_n hyperplane over the whole word domain.
  for (const auto& info : ir::kernels::registry()) {
    const ir::WordLevelModel model = info.make(3, 4, 2);
    ASSERT_TRUE(model.h3.has_value()) << info.name;
    const std::size_t n = model.dim();
    IntVec en(n, 0);
    en[n - 1] = 1;
    ASSERT_EQ(*model.h3, en) << info.name << " does not accumulate along e_n";

    const ir::ValidityRegion region = accumulation_boundary(model, n);
    const Int un = model.domain.upper()[n - 1];
    model.domain.for_each([&](const IntVec& j) {
      EXPECT_EQ(region.contains(j), j[n - 1] == un)
          << info.name << " at " << math::to_string(j);
      return true;
    });
  }
}

TEST(BoundaryTest, StridedChainMatchesBruteForce) {
  // Stride-2 scalar chain: j + 2 leaves [1, u] already at j = u - 1,
  // so the boundary is TWO points, not the single chain end.
  const ir::WordLevelModel model = ir::kernels::scalar_chain(1, 7, 2);
  const ir::ValidityRegion region = accumulation_boundary(model, model.dim());
  Int boundary_points = 0;
  model.domain.for_each([&](const IntVec& j) {
    const bool expected = !model.domain.contains(step(j, *model.h3));
    EXPECT_EQ(region.contains(j), expected) << math::to_string(j);
    if (expected) ++boundary_points;
    return true;
  });
  EXPECT_EQ(boundary_points, 2);
}

TEST(BoundaryTest, MultiComponentH3MatchesBruteForce) {
  // Accumulation flowing diagonally (h3 with two nonzero components,
  // one negative): the region is a union of per-coordinate escapes.
  ir::WordLevelModel model = ir::kernels::convolution1d(4, 3);
  model.h3 = IntVec{1, -1};
  const ir::ValidityRegion region = accumulation_boundary(model, model.dim());
  bool saw_boundary = false, saw_interior = false;
  model.domain.for_each([&](const IntVec& j) {
    const bool expected = !model.domain.contains(step(j, *model.h3));
    EXPECT_EQ(region.contains(j), expected) << math::to_string(j);
    (expected ? saw_boundary : saw_interior) = true;
    return true;
  });
  EXPECT_TRUE(saw_boundary);
  EXPECT_TRUE(saw_interior);
}

TEST(BoundaryTest, RequiresNonzeroH3) {
  ir::WordLevelModel model = ir::kernels::matmul(2);
  model.h3 = IntVec{0, 0, 0};
  EXPECT_THROW(accumulation_boundary(model, 3), PreconditionError);
  model.h3.reset();
  EXPECT_THROW(accumulation_boundary(model, 3), PreconditionError);
}

}  // namespace
}  // namespace bitlevel::core
