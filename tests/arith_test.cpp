// Bit-level arithmetic: exhaustive exactness of the add-shift grid,
// carry-save multiplier and ripple-carry adder, plus their dependence
// triplets validated against trace ground truth.
#include <gtest/gtest.h>

#include "analysis/trace.hpp"
#include "arith/add_shift.hpp"
#include "arith/bits.hpp"
#include "arith/carry_save.hpp"
#include "arith/grid_pass.hpp"
#include "arith/multiplier_model.hpp"
#include "arith/ripple_adder.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bitlevel::arith {
namespace {

TEST(BitsTest, RoundTrip) {
  EXPECT_EQ(to_bits(11, 4), (std::vector<int>{1, 1, 0, 1}));
  EXPECT_EQ(from_bits({1, 1, 0, 1}), 11u);
  EXPECT_EQ(max_value(5), 31u);
  EXPECT_THROW(to_bits(16, 4), PreconditionError);
  EXPECT_THROW(from_bits({2}), PreconditionError);
}

TEST(BitsTest, FullAdderCells) {
  for (int a : {0, 1}) {
    for (int b : {0, 1}) {
      for (int c : {0, 1}) {
        EXPECT_EQ(sum_f(a, b, c), (a + b + c) & 1);
        EXPECT_EQ(carry_g(a, b, c), (a + b + c) >> 1);
      }
    }
  }
}

// Exhaustive exactness for every operand pair up to p = 5 — this is the
// test that catches the dropped east-edge carry the paper's boundary
// condition s(i1, p+1) = 0 would cause (e.g. 6 * 3 at p = 3).
TEST(AddShiftTest, ExhaustivelyExact) {
  for (math::Int p = 1; p <= 5; ++p) {
    const AddShiftMultiplier mult(p);
    const std::uint64_t top = max_value(static_cast<int>(p));
    for (std::uint64_t a = 0; a <= top; ++a) {
      for (std::uint64_t b = 0; b <= top; ++b) {
        EXPECT_EQ(mult.multiply(a, b).product, a * b) << a << " * " << b << " p=" << p;
      }
    }
  }
}

TEST(AddShiftTest, RandomWide) {
  Xoshiro256 rng(99);
  const AddShiftMultiplier mult(16);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.bits(16), b = rng.bits(16);
    EXPECT_EQ(mult.multiply(a, b).product, a * b);
  }
}

TEST(AddShiftTest, GridCellsMatchPaperExample) {
  // Fig. 1c narrative at p = 3: cell (2,2) sums a2&b2, c(2,1), s(1,3).
  const AddShiftMultiplier mult(3);
  const auto grid = mult.multiply(0b111, 0b111);
  const int pp = 1;  // a2 & b2
  const int expect_total = pp + grid.c(2, 1) + grid.s(1, 3);
  EXPECT_EQ(grid.s(2, 2), expect_total & 1);
  EXPECT_EQ(grid.c(2, 2), (expect_total >> 1) & 1);
}

TEST(AddShiftTest, TripletIsPaper34) {
  const auto t = AddShiftMultiplier(4).triplet();
  EXPECT_EQ(t.deps.as_matrix(), (math::IntMat{{1, 0, 1}, {0, 1, -1}}));
  EXPECT_TRUE(t.deps.all_uniform());
  EXPECT_EQ(t.deps[0].cause, "a");
  EXPECT_EQ(t.deps[1].cause, "b,c");
  EXPECT_EQ(t.deps[2].cause, "s");
}

// The declared triplet (3.4) matches the trace of program (3.3).
TEST(AddShiftTest, TripletMatchesTrace) {
  const AddShiftMultiplier mult(4);
  const auto trace = analysis::trace_dependences(mult.access_program());
  const auto report = analysis::match_structure(mult.triplet().deps, mult.triplet().domain, trace);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(AddShiftTest, SequentialLatencyModel) {
  EXPECT_EQ(AddShiftMultiplier::sequential_latency(8), 64);
  EXPECT_THROW(AddShiftMultiplier(0), PreconditionError);
  EXPECT_THROW(AddShiftMultiplier(3).multiply(8, 1), PreconditionError);
}

TEST(CarrySaveTest, ExhaustiveSmallAndRandomWide) {
  for (math::Int p = 1; p <= 4; ++p) {
    const CarrySaveMultiplier mult(p);
    const std::uint64_t top = max_value(static_cast<int>(p));
    for (std::uint64_t a = 0; a <= top; ++a) {
      for (std::uint64_t b = 0; b <= top; ++b) {
        EXPECT_EQ(mult.multiply(a, b).product, a * b);
      }
    }
  }
  Xoshiro256 rng(7);
  const CarrySaveMultiplier mult(20);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t a = rng.bits(20), b = rng.bits(20);
    const auto r = mult.multiply(a, b);
    EXPECT_EQ(r.product, a * b);
    EXPECT_EQ(r.csa_depth, 20);
  }
  EXPECT_EQ(CarrySaveMultiplier::latency(8), 16);
}

// The carry-save multiplier's declared dependence structure matches the
// trace of its access program — the "derive once per arithmetic
// algorithm" validation for the paper's second multiplier.
TEST(CarrySaveTest, TripletMatchesTrace) {
  for (math::Int p : {2, 3, 5}) {
    const CarrySaveMultiplier mult(p);
    const auto triplet = mult.triplet();
    const auto trace = analysis::trace_dependences(mult.access_program());
    const auto report = analysis::match_structure(triplet.deps, triplet.domain, trace);
    EXPECT_TRUE(report.ok) << "p=" << p << "\n" << report.to_string();
    // Unlike the add-shift structure, nothing here is uniform.
    EXPECT_FALSE(triplet.deps.all_uniform());
  }
}

TEST(RippleCarryTest, ExhaustiveSmall) {
  for (math::Int p = 1; p <= 6; ++p) {
    const RippleCarryAdder adder(p);
    const std::uint64_t top = max_value(static_cast<int>(p));
    for (std::uint64_t a = 0; a <= top; ++a) {
      for (std::uint64_t b = 0; b <= top; ++b) {
        EXPECT_EQ(adder.add(a, b).sum, a + b);
      }
    }
  }
}

TEST(RippleCarryTest, TripletMatchesTrace) {
  const RippleCarryAdder adder(6);
  const auto trace = analysis::trace_dependences(adder.access_program());
  const auto report =
      analysis::match_structure(adder.triplet().deps, adder.triplet().domain, trace);
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_EQ(RippleCarryAdder::latency(6), 6);
}

TEST(GridPassTest, PlainPassMatchesMultiplication) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const math::Int p = 2 + static_cast<math::Int>(rng() % 7);
    const std::uint64_t a = rng.bits(static_cast<int>(p));
    const std::uint64_t b = rng.bits(static_cast<int>(p));
    const auto ab = to_bits(a, static_cast<int>(p));
    const auto bb = to_bits(b, static_cast<int>(p));
    const auto pass = run_grid_pass(
        p, [&](math::Int i1, math::Int i2) {
          return ab[static_cast<std::size_t>(i2 - 1)] & bb[static_cast<std::size_t>(i1 - 1)];
        },
        nullptr);
    EXPECT_EQ(pass.output_value(), a * b);
  }
}

TEST(GridPassTest, SaturatedInputsStayExact) {
  // Even fully saturated inputs (every partial product AND every
  // injected bit set) stay within the two virtual columns: the row
  // recurrence T_i <= 2(2^p - 1) + T_{i-1}/2 never exceeds 2^(p+2), so
  // nothing escapes and the reduced value is exact.
  const auto ones = [](math::Int, math::Int) { return 1; };
  for (math::Int p : {2, 4, 7}) {
    // Each cell contributes 2 * 2^(i1+i2-2); the double sum factors into
    // 2 * (2^p - 1)^2.
    const std::uint64_t all = max_value(static_cast<int>(p));
    const auto pass = run_grid_pass(p, ones, ones);
    EXPECT_EQ(pass.output_value(), 2 * all * all) << "p=" << p;
  }
}

TEST(WordMultiplierModelTest, LatencyOrdering) {
  for (math::Int p : {4, 8, 16}) {
    EXPECT_GT(word_pe_latency(WordMultiplier::kAddShift, p),
              word_pe_latency(WordMultiplier::kCarrySave, p));
  }
  EXPECT_NE(to_string(WordMultiplier::kAddShift), to_string(WordMultiplier::kCarrySave));
}

}  // namespace
}  // namespace bitlevel::arith
