// Fault injection, ABFT detection, and bounded-retry recovery.
//
// The acceptance contract of the fault subsystem: seeded campaigns are
// bit-identical across thread counts and memory modes, ABFT flags every
// single corrupted read-out word of a matmul array, transient faults
// recover to the fault-free answer, and persistent faults either remap
// onto spares or degrade into a structured report — never an abort.
#include <gtest/gtest.h>

#include <map>

#include "arch/matmul_arrays.hpp"
#include "core/workload.hpp"
#include "faults/abft.hpp"
#include "faults/injector.hpp"
#include "faults/model.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/executor.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace bitlevel {
namespace {

using arch::BitLevelMatmulArray;
using arch::MatmulMapping;
using arch::WordMatrix;
using faults::FaultKind;
using faults::FaultModel;

TEST(FaultModelTest, KindNamesRoundTrip) {
  for (const FaultKind kind : faults::all_fault_kinds()) {
    EXPECT_EQ(faults::parse_fault_kind(faults::to_string(kind)), kind);
  }
  EXPECT_THROW(faults::parse_fault_kind("melted"), NotFoundError);
}

TEST(FaultModelTest, PersistenceTaxonomy) {
  EXPECT_TRUE(faults::is_persistent(FaultKind::kStuckAt0));
  EXPECT_TRUE(faults::is_persistent(FaultKind::kStuckAt1));
  EXPECT_TRUE(faults::is_persistent(FaultKind::kDeadPe));
  EXPECT_FALSE(faults::is_persistent(FaultKind::kBitFlip));
  EXPECT_FALSE(faults::is_persistent(FaultKind::kDroppedHop));
}

TEST(FaultModelTest, ValidateRejectsBadFields) {
  FaultModel model;
  model.rate = 1.5;
  EXPECT_THROW(model.validate(), PreconditionError);
  model.rate = 0.1;
  model.spares = -1;
  EXPECT_THROW(model.validate(), PreconditionError);
  model.spares = 0;
  model.max_retries = -1;
  EXPECT_THROW(model.validate(), PreconditionError);
  model.max_retries = 2;
  EXPECT_NO_THROW(model.validate());
}

TEST(ParityTest, OddParityCatchesSingleCorruptionAndZeroBundles) {
  math::Int bundle[4] = {3, 0, 1, 0};
  faults::set_parity(bundle, 4);
  EXPECT_TRUE(faults::parity_ok(bundle, 4));
  bundle[2] ^= 1;  // single-channel flip
  EXPECT_FALSE(faults::parity_ok(bundle, 4));
  // The all-zero bundle of a dead PE / dropped hop must FAIL (an even
  // parity convention would wave it through).
  math::Int zeros[4] = {0, 0, 0, 0};
  EXPECT_FALSE(faults::parity_ok(zeros, 4));
}

TEST(InjectorTest, PeFaultDecisionsArePureAndRateMonotone) {
  const math::IntMat space{{1, 0, 0, 0, 0}, {0, 1, 0, 0, 0}};
  FaultModel model;
  model.kind = FaultKind::kStuckAt1;
  model.rate = 0.3;
  model.seed = 42;
  faults::FaultInjector a(model, space, 6);
  faults::FaultInjector b(model, space, 6);
  int faulty = 0;
  for (math::Int i = 0; i < 10; ++i) {
    for (math::Int j = 0; j < 10; ++j) {
      const math::IntVec pe{i, j};
      EXPECT_EQ(a.pe_faulty(pe), b.pe_faulty(pe));  // pure in (seed, site)
      if (a.pe_faulty(pe)) ++faulty;
    }
  }
  EXPECT_GT(faulty, 0);
  EXPECT_LT(faulty, 100);

  model.rate = 0.0;
  faults::FaultInjector none(model, space, 6);
  model.rate = 1.0;
  faults::FaultInjector all(model, space, 6);
  // Transient kinds never mark a PE faulty (they strike transmissions).
  model.kind = FaultKind::kBitFlip;
  faults::FaultInjector transient(model, space, 6);
  for (math::Int i = 0; i < 5; ++i) {
    EXPECT_FALSE(none.pe_faulty({i, i}));
    EXPECT_TRUE(all.pe_faulty({i, i}));
    EXPECT_FALSE(transient.pe_faulty({i, i}));
  }
}

/// One composed matmul plan + safe workload + clean reference run,
/// shared by the ABFT tests.
struct MatmulFixture {
  pipeline::PlanCache cache;
  pipeline::PlanPtr plan;
  core::Workload workload;
  pipeline::PlanRunResult clean;

  explicit MatmulFixture(math::Int u = 3, math::Int p = 2) {
    pipeline::DesignRequest request;
    request.kernel = pipeline::KernelSpec{"matmul", u, 0, 0, 0};
    request.p = p;
    plan = cache.get_or_compose(request);
    workload = core::make_safe_workload(plan->model, p, request.expansion, 7);
    clean = pipeline::run_plan(*plan, workload.x_fn(), workload.y_fn());
  }
};

TEST(AbftTest, CleanRunPasses) {
  MatmulFixture f;
  const auto report =
      faults::abft_check(f.plan->model, f.workload.x_fn(), f.workload.y_fn(), f.clean.z);
  EXPECT_TRUE(report.supported);
  EXPECT_TRUE(report.ok);
  EXPECT_GT(report.rows_checked, 0);
  EXPECT_GT(report.cols_checked, 0);
  EXPECT_TRUE(report.suspects.empty());
}

TEST(AbftTest, DetectsEverySingleCorruptedWord) {
  // The acceptance criterion: 100% of single stuck-at-style read-out
  // corruptions caught. Corrupt each read-out word in turn; every one
  // must fail its row AND column identity, and the intersection must
  // localize exactly that element.
  MatmulFixture f;
  ASSERT_FALSE(f.clean.z.empty());
  for (const auto& [key, value] : f.clean.z) {
    auto corrupted = f.clean.z;
    corrupted[key] = value + 1;
    const auto report =
        faults::abft_check(f.plan->model, f.workload.x_fn(), f.workload.y_fn(), corrupted);
    ASSERT_TRUE(report.supported);
    EXPECT_FALSE(report.ok) << "corruption at " << math::to_string(key) << " slipped through";
    ASSERT_EQ(report.suspects.size(), 1u);
    EXPECT_EQ(report.suspects[0], (math::IntVec{key[0], key[1]}));
  }
}

TEST(AbftTest, UnsupportedModelStaysVacuouslyOk) {
  pipeline::PlanCache cache;
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{"conv", 3, 2, 0, 0};
  request.p = 2;
  const auto plan = cache.get_or_compose(request);
  const auto wl = core::make_safe_workload(plan->model, 2, request.expansion, 7);
  const auto run = pipeline::run_plan(*plan, wl.x_fn(), wl.y_fn());
  const auto report = faults::abft_check(plan->model, wl.x_fn(), wl.y_fn(), run.z);
  EXPECT_FALSE(report.supported);
  EXPECT_TRUE(report.ok);
}

TEST(FaultRunTest, TransientFaultsRecoverToReferenceAnswer) {
  const math::Int u = 3, p = 2;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const WordMatrix x = WordMatrix::random(u, 2, 11);
  const WordMatrix y = WordMatrix::random(u, 2, 12);
  const WordMatrix reference = WordMatrix::multiply_reference(x, y);

  for (const FaultKind kind : {FaultKind::kBitFlip, FaultKind::kDroppedHop}) {
    FaultModel model;
    model.kind = kind;
    model.rate = 0.02;
    model.seed = 5;
    model.spares = 0;  // transients need no spares, only re-execution
    model.max_retries = 2;
    const auto run = array.multiply_under_faults(x, y, model);
    ASSERT_TRUE(run.report.completed) << faults::to_string(kind);
    ASSERT_GT(run.report.injection.transmit_faults, 0) << faults::to_string(kind);
    EXPECT_GT(run.report.faults_detected, 0);
    EXPECT_EQ(run.report.faults_recovered, run.report.faults_detected);
    EXPECT_TRUE(run.report.degraded_points.empty());
    for (math::Int i = 1; i <= u; ++i) {
      for (math::Int j = 1; j <= u; ++j) {
        EXPECT_EQ(run.z.at(i, j), reference.at(i, j)) << faults::to_string(kind);
      }
    }
  }
}

TEST(FaultRunTest, PersistentFaultsRecoverViaSpares) {
  const math::Int u = 3, p = 2;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const WordMatrix x = WordMatrix::random(u, 2, 11);
  const WordMatrix y = WordMatrix::random(u, 2, 12);
  const WordMatrix reference = WordMatrix::multiply_reference(x, y);

  FaultModel model;
  model.kind = FaultKind::kStuckAt1;
  model.rate = 0.05;
  model.seed = 3;
  model.spares = 1'000'000;  // every faulty PE gets a spare
  model.max_retries = 3;
  const auto run = array.multiply_under_faults(x, y, model);
  ASSERT_TRUE(run.report.completed);
  ASSERT_GT(run.report.faults_detected, 0);
  EXPECT_EQ(run.report.faults_recovered, run.report.faults_detected);
  EXPECT_TRUE(run.report.degraded_points.empty());
  EXPECT_GT(run.report.injection.spare_remaps, 0);
  for (math::Int i = 1; i <= u; ++i) {
    for (math::Int j = 1; j <= u; ++j) EXPECT_EQ(run.z.at(i, j), reference.at(i, j));
  }
}

TEST(FaultRunTest, ExhaustedSparesDegradeInsteadOfAborting) {
  const math::Int u = 3, p = 2;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const WordMatrix x = WordMatrix::random(u, 2, 11);
  const WordMatrix y = WordMatrix::random(u, 2, 12);

  FaultModel model;
  model.kind = FaultKind::kDeadPe;
  model.rate = 0.05;
  model.seed = 3;
  model.spares = 0;  // nowhere to remap: persistent faults must degrade
  model.max_retries = 2;
  arch::MatmulFaultRunResult run = array.multiply_under_faults(x, y, model);
  EXPECT_TRUE(run.report.completed);
  ASSERT_GT(run.report.faults_detected, 0);
  EXPECT_FALSE(run.report.degraded_points.empty());
  EXPECT_GT(run.report.injection.spares_exhausted, 0);
  EXPECT_GT(run.report.recovery_reexecutions, 0);
  // Degradation is structured, not silent: ABFT flags the damage.
  EXPECT_TRUE(run.report.abft.supported);
}

TEST(FaultRunTest, DetectOnlyModeFlagsWithoutRecovering) {
  const math::Int u = 3, p = 2;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const WordMatrix x = WordMatrix::random(u, 2, 11);
  const WordMatrix y = WordMatrix::random(u, 2, 12);
  const WordMatrix reference = WordMatrix::multiply_reference(x, y);

  FaultModel model;
  model.kind = FaultKind::kStuckAt1;
  model.rate = 0.05;
  model.seed = 3;
  model.max_retries = 0;  // detect only
  const auto run = array.multiply_under_faults(x, y, model);
  ASSERT_TRUE(run.report.completed);
  ASSERT_GT(run.report.faults_detected, 0);
  EXPECT_EQ(run.report.faults_recovered, 0);
  EXPECT_EQ(run.report.recovery_reexecutions, 0);
  EXPECT_FALSE(run.report.degraded_points.empty());
  // A stuck channel that corrupts the read-out must be visible to ABFT.
  bool corrupted = false;
  for (math::Int i = 1; i <= u; ++i) {
    for (math::Int j = 1; j <= u; ++j) corrupted = corrupted || run.z.at(i, j) != reference.at(i, j);
  }
  if (corrupted) {
    EXPECT_FALSE(run.report.abft.ok);
  }
}

TEST(FaultRunTest, ReportsBitIdenticalAcrossThreadsAndMemoryModes) {
  const math::Int u = 3, p = 2;
  const WordMatrix x = WordMatrix::random(u, 2, 11);
  const WordMatrix y = WordMatrix::random(u, 2, 12);

  FaultModel model;
  model.kind = FaultKind::kStuckAt0;
  model.rate = 0.05;
  model.seed = 9;
  model.spares = 1;
  model.max_retries = 2;

  BitLevelMatmulArray reference_array(MatmulMapping::kFig4, u, p);
  reference_array.set_threads(1);
  reference_array.set_memory_mode(sim::MemoryMode::kDense);
  const auto reference = reference_array.multiply_under_faults(x, y, model);

  for (const int threads : {1, 4}) {
    for (const sim::MemoryMode memory : {sim::MemoryMode::kDense, sim::MemoryMode::kStreaming}) {
      BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
      array.set_threads(threads);
      array.set_memory_mode(memory);
      const auto run = array.multiply_under_faults(x, y, model);
      EXPECT_EQ(run.report.completed, reference.report.completed);
      EXPECT_EQ(run.report.faults_detected, reference.report.faults_detected);
      EXPECT_EQ(run.report.faults_recovered, reference.report.faults_recovered);
      EXPECT_EQ(run.report.recovery_reexecutions, reference.report.recovery_reexecutions);
      EXPECT_EQ(run.report.degraded_points, reference.report.degraded_points);
      EXPECT_EQ(run.report.injection.produce_faults, reference.report.injection.produce_faults);
      EXPECT_EQ(run.report.injection.transmit_faults, reference.report.injection.transmit_faults);
      EXPECT_EQ(run.report.injection.spare_remaps, reference.report.injection.spare_remaps);
      EXPECT_EQ(run.report.abft.ok, reference.report.abft.ok);
      EXPECT_EQ(run.report.abft.suspects, reference.report.abft.suspects);
      for (math::Int i = 1; i <= u; ++i) {
        for (math::Int j = 1; j <= u; ++j) {
          EXPECT_EQ(run.z.at(i, j), reference.z.at(i, j))
              << "threads " << threads << " memory " << static_cast<int>(memory);
        }
      }
    }
  }
}

TEST(FaultRunTest, CleanRunsCarryNoFaultState) {
  const math::Int u = 3, p = 2;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const WordMatrix x = WordMatrix::random(u, 2, 11);
  const WordMatrix y = WordMatrix::random(u, 2, 12);
  const auto run = array.multiply(x, y);
  EXPECT_EQ(run.stats.faults_detected, 0);
  EXPECT_EQ(run.stats.faults_recovered, 0);
  EXPECT_EQ(run.stats.recovery_reexecutions, 0);
  EXPECT_TRUE(run.stats.degraded_points.empty());
}

TEST(CampaignTest, SweepIsStructuredAndNeverSilentWithChecksOn) {
  pipeline::PlanCache cache;
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{"matmul", 3, 0, 0, 0};
  request.p = 2;
  const auto wl = [&] {
    const auto plan = cache.get_or_compose(request);
    return core::make_safe_workload(plan->model, request.p, request.expansion, 7);
  }();

  pipeline::CampaignOptions options;
  options.kinds = {FaultKind::kBitFlip, FaultKind::kStuckAt1};
  options.rates = {0.01, 0.05};
  options.seed = 5;
  options.spares = 2;
  const auto campaign = pipeline::run_campaign(cache, request, wl.x_fn(), wl.y_fn(), options);

  EXPECT_TRUE(campaign.plan_was_cached);  // composed once above
  EXPECT_GT(campaign.reference_words, 0);
  ASSERT_EQ(campaign.reports.size(), 4u);  // kinds x rates, kinds-major
  EXPECT_EQ(campaign.reports[0].model.kind, FaultKind::kBitFlip);
  EXPECT_EQ(campaign.reports[0].model.rate, 0.01);
  EXPECT_EQ(campaign.reports[1].model.rate, 0.05);
  EXPECT_EQ(campaign.reports[2].model.kind, FaultKind::kStuckAt1);
  for (const auto& report : campaign.reports) {
    EXPECT_FALSE(report.silent_corruption);
    if (!report.completed) {
      EXPECT_FALSE(report.abort_reason.empty());
    }
  }
  EXPECT_FALSE(campaign.to_table().empty());

  JsonWriter w;
  campaign.write_json(w);
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(CampaignTest, JsonByteIdenticalAcrossExecutionModes) {
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{"matmul", 3, 0, 0, 0};
  request.p = 2;

  pipeline::CampaignOptions options;
  options.kinds = {FaultKind::kBitFlip, FaultKind::kDeadPe};
  options.rates = {0.05};
  options.seed = 5;

  std::string reference;
  for (const int threads : {1, 4}) {
    for (const sim::MemoryMode memory : {sim::MemoryMode::kDense, sim::MemoryMode::kStreaming}) {
      pipeline::PlanCache cache;
      request.threads = threads;
      request.memory = memory;
      const auto plan = cache.get_or_compose(request);
      const auto wl = core::make_safe_workload(plan->model, request.p, request.expansion, 7);
      const auto campaign = pipeline::run_campaign(cache, request, wl.x_fn(), wl.y_fn(), options);
      JsonWriter w;
      campaign.write_json(w);
      if (reference.empty()) {
        reference = w.str();
      } else {
        EXPECT_EQ(w.str(), reference)
            << "threads " << threads << " memory " << static_cast<int>(memory);
      }
    }
  }
}

TEST(CampaignTest, RejectsEmptySweeps) {
  pipeline::PlanCache cache;
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{"matmul", 2, 0, 0, 0};
  request.p = 2;
  const auto plan = cache.get_or_compose(request);
  const auto wl = core::make_safe_workload(plan->model, request.p, request.expansion, 7);
  pipeline::CampaignOptions options;
  options.kinds.clear();
  EXPECT_THROW(pipeline::run_campaign(cache, request, wl.x_fn(), wl.y_fn(), options),
               PreconditionError);
  options = {};
  options.rates.clear();
  EXPECT_THROW(pipeline::run_campaign(cache, request, wl.x_fn(), wl.y_fn(), options),
               PreconditionError);
}

}  // namespace
}  // namespace bitlevel
