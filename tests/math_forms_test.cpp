// Property tests for the normal forms and Diophantine solver: on random
// integer matrices, Hermite and Smith decompositions must satisfy their
// defining identities, agree on rank with fraction-free elimination, and
// the Diophantine machinery must reproduce brute-force solution sets.
#include <gtest/gtest.h>

#include <set>

#include "math/bareiss.hpp"
#include "math/diophantine.hpp"
#include "math/hnf.hpp"
#include "math/snf.hpp"
#include "support/rng.hpp"

namespace bitlevel::math {
namespace {

IntMat random_matrix(Xoshiro256& rng, std::size_t rows, std::size_t cols, Int lo, Int hi) {
  IntMat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m.at(r, c) = rng.uniform(lo, hi);
  }
  return m;
}

class FormsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormsPropertyTest, HermitePostconditions) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t rows = 1 + rng() % 4;
    const std::size_t cols = 1 + rng() % 4;
    const IntMat a = random_matrix(rng, rows, cols, -6, 6);
    const HermiteForm hf = hermite_normal_form(a);
    // Defining identity and unimodularity.
    EXPECT_EQ(a.mul(hf.u), hf.h);
    EXPECT_TRUE(is_unimodular(hf.u));
    EXPECT_EQ(hf.rank, rank(a));
    // Echelon shape: positive pivots, zero tail right of each pivot.
    for (std::size_t k = 0; k < hf.rank; ++k) {
      const std::size_t pr = hf.pivot_rows[k];
      EXPECT_GT(hf.h.at(pr, k), 0);
      for (std::size_t j = k + 1; j < cols; ++j) EXPECT_EQ(hf.h.at(pr, j), 0);
      // Entries left of the pivot reduced into [0, pivot).
      for (std::size_t j = 0; j < k; ++j) {
        EXPECT_GE(hf.h.at(pr, j), 0);
        EXPECT_LT(hf.h.at(pr, j), hf.h.at(pr, k));
      }
    }
    // Tail columns are zero.
    for (std::size_t k = hf.rank; k < cols; ++k) {
      EXPECT_TRUE(is_zero(hf.h.col(k)));
    }
  }
}

TEST_P(FormsPropertyTest, SmithPostconditions) {
  Xoshiro256 rng(GetParam() + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t rows = 1 + rng() % 4;
    const std::size_t cols = 1 + rng() % 4;
    const IntMat a = random_matrix(rng, rows, cols, -5, 5);
    const SmithForm sf = smith_normal_form(a);
    EXPECT_EQ(sf.u.mul(a).mul(sf.v), sf.s);
    EXPECT_TRUE(is_unimodular(sf.u));
    EXPECT_TRUE(is_unimodular(sf.v));
    EXPECT_EQ(sf.rank, rank(a));
    const std::size_t bound = std::min(rows, cols);
    for (std::size_t i = 0; i < bound; ++i) {
      EXPECT_GE(sf.s.at(i, i), 0);
      // Off-diagonal entries are zero.
      for (std::size_t j = 0; j < cols; ++j) {
        if (j != i) {
          EXPECT_EQ(sf.s.at(i, j), 0);
        }
      }
      // Divisibility chain s_i | s_{i+1}.
      if (i + 1 < bound && sf.s.at(i, i) != 0 && sf.s.at(i + 1, i + 1) != 0) {
        EXPECT_EQ(sf.s.at(i + 1, i + 1) % sf.s.at(i, i), 0);
      }
    }
  }
}

TEST_P(FormsPropertyTest, DiophantineSolutionsAreValid) {
  Xoshiro256 rng(GetParam() + 2000);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t rows = 1 + rng() % 3;
    const std::size_t cols = 1 + rng() % 3;
    const IntMat a = random_matrix(rng, rows, cols, -4, 4);
    // Build a RHS that is guaranteed solvable: b = A * x0.
    IntVec x0(cols);
    for (auto& v : x0) v = rng.uniform(-3, 3);
    const IntVec b = a.mul(x0);
    const auto sol = solve_diophantine(a, b);
    ASSERT_TRUE(sol.has_value());
    EXPECT_EQ(a.mul(sol->particular), b);
    for (std::size_t k = 0; k < sol->kernel.cols(); ++k) {
      EXPECT_TRUE(is_zero(a.mul(sol->kernel.col(k))));
    }
    // Kernel dimension = cols - rank.
    EXPECT_EQ(sol->kernel.cols(), cols - rank(a));
  }
}

TEST_P(FormsPropertyTest, EnumerationMatchesBruteForce) {
  Xoshiro256 rng(GetParam() + 3000);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t rows = 1 + rng() % 2;
    const std::size_t cols = 2 + rng() % 2;
    const IntMat a = random_matrix(rng, rows, cols, -3, 3);
    IntVec b(rows);
    for (auto& v : b) v = rng.uniform(-4, 4);
    const IntVec lo(cols, -3), hi(cols, 3);

    std::set<IntVec> expected;
    IntVec x = lo;
    while (true) {
      if (a.mul(x) == b) expected.insert(x);
      std::size_t k = cols;
      bool adv = false;
      while (k-- > 0) {
        if (x[k] < hi[k]) {
          ++x[k];
          adv = true;
          break;
        }
        x[k] = lo[k];
      }
      if (!adv) break;
    }

    const auto got_vec = enumerate_solutions_in_box(a, b, lo, hi);
    const std::set<IntVec> got(got_vec.begin(), got_vec.end());
    EXPECT_EQ(got, expected);
    EXPECT_EQ(got_vec.size(), got.size()) << "duplicates returned";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormsPropertyTest, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(DiophantineTest, InfeasibleSystems) {
  // 2x = 1 has no integer solution.
  EXPECT_FALSE(solve_single_equation({2}, 1).has_value());
  // 2x + 4y = 7: gcd 2 does not divide 7.
  EXPECT_FALSE(solve_single_equation({2, 4}, 7).has_value());
  // Inconsistent stacked system.
  EXPECT_FALSE(solve_diophantine(IntMat{{1, 0}, {1, 0}}, {0, 1}).has_value());
}

TEST(DiophantineTest, SingleEquationStructure) {
  const auto sol = solve_single_equation({3, 5}, 1);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(3 * sol->particular[0] + 5 * sol->particular[1], 1);
  ASSERT_EQ(sol->kernel.cols(), 1u);
  const IntVec k = sol->kernel.col(0);
  EXPECT_EQ(3 * k[0] + 5 * k[1], 0);
  EXPECT_NE(k, (IntVec{0, 0}));
}

TEST(DiophantineTest, EnumerationLimit) {
  // x + y = 0 in [-5,5]^2 has 11 solutions; the limit caps them.
  const auto some = enumerate_solutions_in_box(IntMat{{1, 1}}, {0}, {-5, -5}, {5, 5}, 4);
  EXPECT_EQ(some.size(), 4u);
}

}  // namespace
}  // namespace bitlevel::math
