// Projection-based space mappings and the design-space explorer.
#include <gtest/gtest.h>

#include "core/expansion.hpp"
#include "ir/kernels.hpp"
#include "mapping/explore.hpp"
#include "mapping/projection.hpp"
#include "mapping/schedule.hpp"
#include "math/bareiss.hpp"
#include "support/error.hpp"

namespace bitlevel::mapping {
namespace {

TEST(ProjectionTest, SpaceMappingAnnihilatesDirections) {
  // Project 3-D matmul along j3 (the classical word-level design).
  const IntMat u{{0}, {0}, {1}};
  const IntMat s = space_mapping_from_projections(u);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.cols(), 3u);
  EXPECT_TRUE(math::is_zero(s.mul(u.col(0))));
  EXPECT_EQ(math::rank(s), 2u);
}

TEST(ProjectionTest, MultipleDirections) {
  // 5-D structure projected along three directions -> 2-D array.
  const IntMat u{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}, {0, 0, 0}, {0, 0, 0}};
  const IntMat s = space_mapping_from_projections(u);
  EXPECT_EQ(s.rows(), 2u);
  for (std::size_t c = 0; c < u.cols(); ++c) {
    EXPECT_TRUE(math::is_zero(s.mul(u.col(c)))) << "direction " << c;
  }
  EXPECT_EQ(math::rank(s), 2u);
}

TEST(ProjectionTest, RejectsDependentDirections) {
  const IntMat u{{1, 2}, {0, 0}, {1, 2}};
  EXPECT_THROW(space_mapping_from_projections(u), PreconditionError);
  const IntMat too_many{{1, 0}, {0, 1}};
  EXPECT_THROW(space_mapping_from_projections(too_many), PreconditionError);
}

TEST(ProjectionTest, CandidateDirectionsArePrimitiveAndLexPositive) {
  const auto dirs = candidate_directions(3, 2);
  ASSERT_GE(dirs.size(), 3u);
  // Unit vectors lead.
  EXPECT_EQ(dirs[0], (IntVec{1, 0, 0}));
  EXPECT_EQ(dirs[1], (IntVec{0, 1, 0}));
  EXPECT_EQ(dirs[2], (IntVec{0, 0, 1}));
  for (const auto& d : dirs) {
    EXPECT_TRUE(math::lex_positive(d)) << math::to_string(d);
    EXPECT_EQ(math::content(d), 1) << math::to_string(d);
    int support = 0;
    for (math::Int x : d) support += (x != 0);
    EXPECT_LE(support, 2);
  }
  // [1,-1,0] must be included (the convolution projection).
  EXPECT_NE(std::find(dirs.begin(), dirs.end(), IntVec{1, -1, 0}), dirs.end());
}

TEST(ProjectionTest, IndependentSetsAreIndependent) {
  const auto dirs = candidate_directions(3, 2);
  const auto sets = independent_direction_sets(dirs, 2, 10);
  EXPECT_EQ(sets.size(), 10u);
  for (const auto& s : sets) EXPECT_EQ(math::rank(s), 2u);
}

// The explorer rediscovers the classical word-level matmul design:
// projecting along j3 with schedule [1,1,1] achieves 3(u-1)+1 on u^2
// processors.
TEST(ExploreTest, RediscoversWordLevelMatmulDesign) {
  const auto triplet = ir::kernels::matmul(4).triplet();
  ExploreOptions options;
  options.max_direction_sets = 16;
  const auto result = explore_designs(triplet.domain, triplet.deps,
                                      InterconnectionPrimitives::mesh2d(),
                                      DesignObjective::kTime, options);
  ASSERT_FALSE(result.designs.empty());
  EXPECT_EQ(result.designs.front().total_time, 3 * (4 - 1) + 1);
  EXPECT_EQ(result.designs.front().processors, 16);
  EXPECT_GT(result.spaces_tried, 0u);
}

// Objectives reorder the front: minimizing processors for matmul finds
// designs with fewer PEs than the time-optimal one (a 1-D-ish
// projection uses more time, fewer processors).
TEST(ExploreTest, ObjectivesDiffer) {
  const auto triplet = ir::kernels::matmul(4).triplet();
  ExploreOptions options;
  options.max_direction_sets = 24;
  const auto by_time = explore_designs(triplet.domain, triplet.deps,
                                       InterconnectionPrimitives::mesh2d(),
                                       DesignObjective::kTime, options);
  const auto by_pe = explore_designs(triplet.domain, triplet.deps,
                                     InterconnectionPrimitives::mesh2d(),
                                     DesignObjective::kProcessors, options);
  ASSERT_FALSE(by_time.designs.empty());
  ASSERT_FALSE(by_pe.designs.empty());
  EXPECT_LE(by_pe.designs.front().processors, by_time.designs.front().processors);
  EXPECT_LE(by_time.designs.front().total_time, by_pe.designs.front().total_time);
}

}  // namespace
}  // namespace bitlevel::mapping
