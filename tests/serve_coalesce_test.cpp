// Cross-request lane coalescing: concurrent same-key batch requests
// share ONE combined lane-group execution, and nobody can tell from
// the results — each member's "result" document is byte-identical to a
// solo run (modulo the honest path ledger when coalescing upgrades a
// batch=1 request from the scalar path onto lanes). Deadlines bypass
// rather than miss; a cancelled member is masked out of the scatter,
// never tearing its groupmates; the counters and histograms account
// for every request.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/cache.hpp"
#include "serve/client.hpp"
#include "serve/coalesce.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/cancel.hpp"
#include "support/json.hpp"

namespace bitlevel::serve {
namespace {

std::string temp_socket_path(const char* tag) {
  return "/tmp/bitlevel-coalesce-test-" + std::string(tag) + "-" +
         std::to_string(static_cast<long>(::getpid())) + ".sock";
}

/// Runs a Server on its own thread; joins + drains on destruction.
class TestDaemon {
 public:
  explicit TestDaemon(ServerConfig config) : server_(std::move(config)) {
    server_.bind_and_listen();
    thread_ = std::thread([this] { report_ = server_.run(); });
  }
  ~TestDaemon() { drain(); }

  DrainReport drain() {
    server_.shutdown();
    if (thread_.joinable()) thread_.join();
    return report_;
  }

  Server& server() { return server_; }
  const std::string& endpoint() const { return server_.endpoint(); }

 private:
  Server server_;
  std::thread thread_;
  DrainReport report_;
};

bool response_ok(const std::string& response) {
  const JsonValue doc = json_parse(response);
  const JsonValue* ok = doc.is_object() ? doc.find("ok") : nullptr;
  return ok != nullptr && ok->is_bool() && ok->bool_v;
}

std::string error_code(const std::string& response) {
  const JsonValue doc = json_parse(response);
  const JsonValue* error = doc.is_object() ? doc.find("error") : nullptr;
  if (error == nullptr || !error->is_object()) return "";
  const JsonValue* code = error->find("code");
  return code != nullptr && code->is_string() ? code->string_v : "";
}

/// A batch request line over the wire / through handle_line.
std::string batch_line(std::int64_t id, const char* kernel, int u, int p, int batch,
                       std::uint64_t seed, const char* sliced, const char* compiled,
                       int lanes, std::int64_t deadline_ms = 0) {
  std::string line = "{\"id\":" + std::to_string(id) + ",\"action\":\"batch\",\"kernel\":\"" +
                     kernel + "\",\"u\":" + std::to_string(u) +
                     ",\"p\":" + std::to_string(p) + ",\"batch\":" + std::to_string(batch) +
                     ",\"seed\":" + std::to_string(seed) + ",\"sliced\":\"" + sliced +
                     "\",\"compiled\":\"" + compiled + "\",\"lanes\":" + std::to_string(lanes);
  if (deadline_ms > 0) line += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  line += "}";
  return line;
}

/// One-shot reference: the same line through handle_line on a FRESH
/// cache — exactly what the daemon's solo path would have served.
std::string one_shot_result(const std::string& line) {
  pipeline::PlanCache cache(8);
  const ServeContext context{cache, {}, {}};
  return json_member_text(handle_line(context, line), "result");
}

/// Drop the execution-path ledger ("sliced":{...}, a flat object) for
/// the batch=1 comparisons: coalescing legitimately upgrades a lone
/// item from the scalar path onto shared lanes, and the ledger then
/// reports what actually happened instead of matching the solo run.
std::string strip_path_ledger(const std::string& doc) {
  const std::size_t begin = doc.find("\"sliced\":{");
  if (begin == std::string::npos) return doc;
  const std::size_t end = doc.find('}', begin);
  if (end == std::string::npos) return doc;
  std::string out = doc;
  const std::size_t comma = end + 1 < out.size() && out[end + 1] == ',' ? 1 : 0;
  out.erase(begin, end - begin + 1 + comma);
  return out;
}

// ----------------------------------------------------------- identity

/// The acceptance matrix: concurrent same-key clients across kernels
/// and execution modes, every served document byte-identical to the
/// one-shot run of the same line.
TEST(ServeCoalesceTest, CoalescedBatchesMatchOneShotByteForByte) {
  struct Mode {
    const char* sliced;
    const char* compiled;
    int lanes;
  };
  struct Kernel {
    const char* name;
    int u;
    int p;
  };
  const std::vector<Mode> modes = {
      {"on", "off", 0},   // interpreted 64-lane slicing
      {"on", "on", 0},    // compiled, auto lane width
      {"on", "on", 128},  // compiled, explicit lanes
  };
  const std::vector<Kernel> kernels = {{"matmul", 2, 3}, {"scalar", 3, 3}};

  const std::string path = temp_socket_path("identity");
  pipeline::PlanCache cache(16);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 2;
  config.coalesce_window_us = 50'000;  // generous: every client joins
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  constexpr int kClients = 4;
  for (const Kernel& kernel : kernels) {
    for (const Mode& mode : modes) {
      std::vector<std::string> lines;
      std::vector<std::string> served(kClients);
      for (int c = 0; c < kClients; ++c) {
        lines.push_back(batch_line(c + 1, kernel.name, kernel.u, kernel.p, /*batch=*/3,
                                   /*seed=*/static_cast<std::uint64_t>(100 * c + 1),
                                   mode.sliced, mode.compiled, mode.lanes));
      }
      std::vector<std::thread> threads;
      for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
          Client client;
          client.connect(daemon.endpoint());
          served[c] = client.roundtrip(lines[c]);
        });
      }
      for (std::thread& t : threads) t.join();
      for (int c = 0; c < kClients; ++c) {
        ASSERT_TRUE(response_ok(served[c])) << served[c];
        // Per-request timing rides the envelope, outside "result".
        EXPECT_NE(served[c].find("\"queue_us\":"), std::string::npos) << served[c];
        EXPECT_NE(served[c].find("\"exec_us\":"), std::string::npos) << served[c];
        EXPECT_EQ(json_member_text(served[c], "result"), one_shot_result(lines[c]))
            << kernel.name << " " << mode.sliced << "/" << mode.compiled << " lanes "
            << mode.lanes << " client " << c;
      }
    }
  }
  const DrainReport report = daemon.drain();
  EXPECT_GE(report.stats.coalesced_groups, 1u);
  EXPECT_GE(report.stats.coalesced_items, 2u * 3u);
  EXPECT_EQ(report.leaked_plans, 0u);
  EXPECT_EQ(report.stats.requests,
            report.stats.served_ok + report.stats.served_error +
                report.stats.rejected_overloaded + report.stats.rejected_oversized +
                report.stats.rejected_deadline);
}

/// batch=1 requests — the headline case: alone each would run the
/// scalar path, coalesced they share lanes. The results agree with the
/// solo run byte for byte outside the path ledger, and the ledger
/// honestly reports lane execution (scalar_items 0).
TEST(ServeCoalesceTest, SingleItemRequestsShareLanesWithHonestLedger) {
  const std::string path = temp_socket_path("single");
  pipeline::PlanCache cache(8);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 2;
  config.coalesce_window_us = 50'000;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  constexpr int kClients = 4;
  std::vector<std::string> lines;
  std::vector<std::string> served(kClients);
  for (int c = 0; c < kClients; ++c) {
    lines.push_back(batch_line(c + 1, "matmul", 2, 3, /*batch=*/1,
                               /*seed=*/static_cast<std::uint64_t>(c + 1), "on", "on", 0));
  }
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      client.connect(daemon.endpoint());
      served[c] = client.roundtrip(lines[c]);
    });
  }
  for (std::thread& t : threads) t.join();

  bool any_on_lanes = false;
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(response_ok(served[c])) << served[c];
    const std::string result = json_member_text(served[c], "result");
    EXPECT_EQ(strip_path_ledger(result), strip_path_ledger(one_shot_result(lines[c])))
        << result;
    any_on_lanes = any_on_lanes || result.find("\"scalar_items\":0") != std::string::npos;
  }
  const DrainReport report = daemon.drain();
  if (report.stats.coalesced_groups > 0) {
    // At least one member of a >= 2 group carried its item on lanes —
    // the path a solo batch=1 run never takes.
    EXPECT_TRUE(any_on_lanes);
    EXPECT_GE(report.stats.coalesced_items, 2u);
  }
  EXPECT_EQ(report.leaked_plans, 0u);
}

// ----------------------------------------------------------- deadlines

/// A request whose deadline cannot survive the coalesce window must
/// bypass the group and run solo — deadlines are never sacrificed for
/// batching efficiency.
TEST(ServeCoalesceTest, TightDeadlineBypassesTheWindow) {
  const std::string path = temp_socket_path("bypass");
  pipeline::PlanCache cache(8);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 2;
  config.coalesce_window_us = 150'000;  // 150 ms: far beyond the tight deadline
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  // Warm the plan first so the tight-deadline run cannot blow its
  // budget on first-touch composition.
  Client warm;
  warm.connect(daemon.endpoint());
  ASSERT_TRUE(response_ok(
      warm.roundtrip(batch_line(1, "matmul", 2, 3, 2, 1, "on", "on", 0))));

  // An unbounded leader opens a 150 ms window...
  Client slow;
  slow.connect(daemon.endpoint());
  slow.send_line(batch_line(2, "matmul", 2, 3, 2, 2, "on", "on", 0));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // ... and the 40 ms-deadline request must NOT wait out the window.
  Client tight;
  tight.connect(daemon.endpoint());
  const auto sent = std::chrono::steady_clock::now();
  const std::string response =
      tight.roundtrip(batch_line(3, "matmul", 2, 3, 2, 3, "on", "on", 0,
                                 /*deadline_ms=*/40));
  const auto waited = std::chrono::steady_clock::now() - sent;
  EXPECT_TRUE(response_ok(response)) << response;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited).count(), 140)
      << "tight-deadline request waited out the coalesce window";

  std::string slow_response;
  ASSERT_TRUE(slow.recv_line(&slow_response));
  EXPECT_TRUE(response_ok(slow_response)) << slow_response;

  const DrainReport report = daemon.drain();
  EXPECT_GE(report.stats.coalesce_bypass_deadline, 1u);
  EXPECT_EQ(report.leaked_plans, 0u);
}

// ---------------------------------------------------------- cancellation

/// Deterministic masking: a member whose token already fired is masked
/// out of the scatter and answered with deadline_exceeded; its
/// groupmates' documents are byte-identical to solo runs.
TEST(ServeCoalesceTest, CancelledMemberIsMaskedWithoutTearingGroupmates) {
  pipeline::PlanCache cache(8);
  std::vector<std::string> lines = {
      batch_line(1, "matmul", 2, 3, 2, 10, "on", "on", 0),
      batch_line(2, "matmul", 2, 3, 2, 20, "on", "on", 0),
      batch_line(3, "matmul", 2, 3, 2, 30, "on", "on", 0),
  };
  std::vector<CoalesceMember> members;
  for (const std::string& line : lines) {
    CoalesceMember member;
    member.request = parse_request(line);
    ASSERT_TRUE(member.request.valid) << line;
    members.push_back(std::move(member));
  }
  ASSERT_EQ(coalesce_key(members[0].request), coalesce_key(members[1].request));
  ASSERT_EQ(coalesce_key(members[0].request), coalesce_key(members[2].request));

  members[1].cancel = CancelToken::manual();
  members[1].cancel.cancel();  // fired before execution: lanes masked

  run_coalesced_group(cache, members, CancelToken{});

  EXPECT_FALSE(members[1].ok);
  EXPECT_EQ(error_code(members[1].response), "deadline_exceeded") << members[1].response;
  for (const std::size_t m : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_TRUE(members[m].ok) << members[m].response;
    EXPECT_EQ(json_member_text(members[m].response, "result"), one_shot_result(lines[m]))
        << members[m].response;
  }
  EXPECT_EQ(cache.leaked_plans(), 0u);
}

/// All-cancelled group: everyone gets a structured deadline error and
/// nothing leaks.
TEST(ServeCoalesceTest, FullyCancelledGroupFailsStructurally) {
  pipeline::PlanCache cache(8);
  std::vector<CoalesceMember> members;
  for (int i = 0; i < 2; ++i) {
    CoalesceMember member;
    member.request = parse_request(
        batch_line(i + 1, "matmul", 2, 3, 2, static_cast<std::uint64_t>(i + 1), "on", "on", 0));
    ASSERT_TRUE(member.request.valid);
    member.cancel = CancelToken::manual();
    member.cancel.cancel();
    members.push_back(std::move(member));
  }
  run_coalesced_group(cache, members, CancelToken{});
  for (const CoalesceMember& member : members) {
    EXPECT_FALSE(member.ok);
    EXPECT_EQ(error_code(member.response), "deadline_exceeded") << member.response;
  }
  EXPECT_EQ(cache.leaked_plans(), 0u);
}

// ------------------------------------------------------------- keys

TEST(ServeCoalesceTest, CoalesceKeySeparatesWhatMustNotShare) {
  const auto key_of = [](const std::string& line) {
    return coalesce_key(parse_request(line));
  };
  const std::string base = batch_line(1, "matmul", 2, 3, 4, 1, "on", "on", 0);
  const std::string key = key_of(base);
  ASSERT_FALSE(key.empty());
  // Seed, batch size and id vary freely within a group.
  EXPECT_EQ(key, key_of(batch_line(9, "matmul", 2, 3, 7, 42, "on", "on", 0)));
  // Kernel, extents, p, lanes and execution modes split groups.
  EXPECT_NE(key, key_of(batch_line(1, "matmul", 3, 3, 4, 1, "on", "on", 0)));
  EXPECT_NE(key, key_of(batch_line(1, "matmul", 2, 4, 4, 1, "on", "on", 0)));
  EXPECT_NE(key, key_of(batch_line(1, "matmul", 2, 3, 4, 1, "on", "on", 128)));
  EXPECT_NE(key, key_of(batch_line(1, "matmul", 2, 3, 4, 1, "on", "off", 0)));
  EXPECT_NE(key, key_of(batch_line(1, "scalar", 3, 3, 4, 1, "on", "on", 0)));
  // Scalar-pinned and non-batch requests never coalesce.
  EXPECT_TRUE(key_of(batch_line(1, "matmul", 2, 3, 4, 1, "off", "auto", 0)).empty());
  EXPECT_TRUE(key_of("{\"id\":1,\"action\":\"simulate\",\"kernel\":\"matmul\",\"u\":2,"
                     "\"p\":3}")
                  .empty());
  EXPECT_TRUE(key_of("{not json").empty());
}

// ------------------------------------------------------------- stats

TEST(ServeCoalesceTest, StatsDocumentCarriesHistogramsAndKeys) {
  const std::string path = temp_socket_path("stats");
  pipeline::PlanCache cache(8);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 2;
  config.coalesce_window_us = 30'000;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      client.connect(daemon.endpoint());
      client.roundtrip(batch_line(c + 1, "matmul", 2, 3, 2,
                                  static_cast<std::uint64_t>(c + 1), "on", "on", 0));
    });
  }
  for (std::thread& t : threads) t.join();

  Client client;
  client.connect(daemon.endpoint());
  const std::string response = client.roundtrip("{\"id\":99,\"action\":\"stats\"}");
  ASSERT_TRUE(response_ok(response)) << response;
  const JsonValue doc = json_parse(response);
  const JsonValue* server = doc.find("result")->find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->find("coalesce_window_us")->int_v, 30'000);
  EXPECT_GE(server->find("coalesced_groups")->int_v, 0);
  const JsonValue* latency = server->find("latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->find("count")->int_v, 3);
  EXPECT_GE(latency->find("p99")->int_v, latency->find("p50")->int_v);
  const JsonValue* occupancy = server->find("group_occupancy");
  ASSERT_NE(occupancy, nullptr);
  EXPECT_GE(occupancy->find("count")->int_v, 1);
  const JsonValue* keys = server->find("coalesce_keys");
  ASSERT_NE(keys, nullptr);
  ASSERT_TRUE(keys->is_array());
  ASSERT_GE(keys->array_v.size(), 1u);
  EXPECT_FALSE(keys->array_v[0].find("key")->string_v.empty());
  EXPECT_GE(keys->array_v[0].find("items")->int_v, 2);
}

TEST(ServeCoalesceTest, ConfigValidationRejectsBadKnobs) {
  {
    ServerConfig config;
    config.coalesce_window_us = -1;
    EXPECT_THROW(Server{std::move(config)}, Error);
  }
  {
    ServerConfig config;
    config.max_coalesce_items = 0;
    EXPECT_THROW(Server{std::move(config)}, Error);
  }
}

/// coalesce_window_us = 0 disables the machinery entirely: requests
/// run solo, counters stay zero, results unchanged.
TEST(ServeCoalesceTest, ZeroWindowDisablesCoalescing) {
  const std::string path = temp_socket_path("off");
  pipeline::PlanCache cache(8);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 2;
  config.coalesce_window_us = 0;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  const std::string line = batch_line(1, "matmul", 2, 3, 3, 5, "on", "on", 0);
  Client client;
  client.connect(daemon.endpoint());
  const std::string response = client.roundtrip(line);
  ASSERT_TRUE(response_ok(response)) << response;
  EXPECT_EQ(json_member_text(response, "result"), one_shot_result(line));

  const DrainReport report = daemon.drain();
  EXPECT_EQ(report.stats.coalesced_groups, 0u);
  EXPECT_EQ(report.stats.coalesced_items, 0u);
  EXPECT_EQ(report.leaked_plans, 0u);
}

}  // namespace
}  // namespace bitlevel::serve
