// Unit tests for the integer-arithmetic foundation: checked ops, gcd,
// vectors, matrices, rationals, rank and determinant.
#include <gtest/gtest.h>

#include <limits>

#include "math/bareiss.hpp"
#include "math/checked.hpp"
#include "math/gcd.hpp"
#include "math/int_mat.hpp"
#include "math/int_vec.hpp"
#include "math/rational.hpp"
#include "support/error.hpp"

namespace bitlevel::math {
namespace {

TEST(CheckedTest, AddSubMulBehave) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_sub(2, 3), -1);
  EXPECT_EQ(checked_mul(-4, 5), -20);
  EXPECT_EQ(checked_neg(7), -7);
}

TEST(CheckedTest, OverflowThrows) {
  const Int big = std::numeric_limits<Int>::max();
  EXPECT_THROW(checked_add(big, 1), OverflowError);
  EXPECT_THROW(checked_sub(std::numeric_limits<Int>::min(), 1), OverflowError);
  EXPECT_THROW(checked_mul(big, 2), OverflowError);
  EXPECT_THROW(checked_neg(std::numeric_limits<Int>::min()), OverflowError);
}

TEST(CheckedTest, FloorCeilDivision) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(mod_floor(-7, 3), 2);
  EXPECT_EQ(mod_floor(7, -3), 1);
  EXPECT_THROW(floor_div(1, 0), PreconditionError);
}

TEST(GcdTest, BasicIdentities) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(0, 0), 0);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(0, 9), 0);
}

TEST(GcdTest, ExtendedGcdBezout) {
  for (Int a : {0, 1, -3, 12, 240, -46}) {
    for (Int b : {0, 1, 7, -18, 46, 240}) {
      const ExtGcd e = extended_gcd(a, b);
      EXPECT_EQ(e.g, gcd(a, b));
      EXPECT_EQ(a * e.x + b * e.y, e.g) << a << "," << b;
    }
  }
}

TEST(GcdTest, Coprimality) {
  EXPECT_TRUE(coprime({3, 5, 7}));
  EXPECT_FALSE(coprime({4, 6, 8}));
  EXPECT_FALSE(coprime({}));
  EXPECT_EQ(gcd_all({12, 18, 30}), 6);
}

TEST(IntVecTest, Arithmetic) {
  const IntVec a{1, -2, 3}, b{4, 5, -6};
  EXPECT_EQ(add(a, b), (IntVec{5, 3, -3}));
  EXPECT_EQ(sub(a, b), (IntVec{-3, -7, 9}));
  EXPECT_EQ(scale(-2, a), (IntVec{-2, 4, -6}));
  EXPECT_EQ(dot(a, b), 4 - 10 - 18);
  EXPECT_EQ(l1_norm(a), 6);
  EXPECT_EQ(content(IntVec{6, -9, 12}), 3);
  EXPECT_THROW(add(a, IntVec{1}), PreconditionError);
}

TEST(IntVecTest, LexOrdering) {
  EXPECT_TRUE(lex_positive({0, 0, 1}));
  EXPECT_FALSE(lex_positive({0, -1, 5}));
  EXPECT_FALSE(lex_positive({0, 0, 0}));
  EXPECT_LT(lex_compare({1, 2}, {1, 3}), 0);
  EXPECT_EQ(lex_compare({1, 2}, {1, 2}), 0);
}

TEST(IntMatTest, Construction) {
  const IntMat m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(1, 2), 6);
  EXPECT_EQ(m.row(0), (IntVec{1, 2, 3}));
  EXPECT_EQ(m.col(1), (IntVec{2, 5}));
  EXPECT_EQ(IntMat::identity(2), (IntMat{{1, 0}, {0, 1}}));
  EXPECT_EQ(IntMat::from_columns({{1, 4}, {2, 5}, {3, 6}}), m);
  EXPECT_EQ(IntMat::from_rows({{1, 2, 3}, {4, 5, 6}}), m);
}

TEST(IntMatTest, Products) {
  const IntMat a{{1, 2}, {3, 4}};
  const IntMat b{{0, 1}, {1, 0}};
  EXPECT_EQ(a.mul(b), (IntMat{{2, 1}, {4, 3}}));
  EXPECT_EQ(a.mul(IntVec{1, 1}), (IntVec{3, 7}));
  EXPECT_EQ(a.transpose(), (IntMat{{1, 3}, {2, 4}}));
  EXPECT_EQ(a.hstack(b), (IntMat{{1, 2, 0, 1}, {3, 4, 1, 0}}));
  EXPECT_EQ(a.vstack(b), (IntMat{{1, 2}, {3, 4}, {0, 1}, {1, 0}}));
  EXPECT_EQ(a.select_columns({1}), (IntMat{{2}, {4}}));
}

TEST(BareissTest, RankAndDeterminant) {
  EXPECT_EQ(rank(IntMat{{1, 2}, {2, 4}}), 1u);
  EXPECT_EQ(rank(IntMat{{1, 0, 2}, {0, 1, 3}}), 2u);
  EXPECT_EQ(rank(IntMat(3, 3)), 0u);
  EXPECT_EQ(determinant(IntMat{{3, 1}, {1, 2}}), 5);
  EXPECT_EQ(determinant(IntMat{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}), 24);
  EXPECT_EQ(determinant(IntMat{{1, 2}, {2, 4}}), 0);
  // Permutation sign.
  EXPECT_EQ(determinant(IntMat{{0, 1}, {1, 0}}), -1);
  EXPECT_TRUE(is_unimodular(IntMat{{1, 5}, {0, 1}}));
  EXPECT_FALSE(is_unimodular(IntMat{{2, 0}, {0, 1}}));
}

TEST(RationalTest, ArithmeticAndOrdering) {
  const Rational half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(Rational(-4, -8), half);
  EXPECT_EQ(Rational(4, -8), -half);
  EXPECT_LT(third, half);
  EXPECT_GE(half, third);
  EXPECT_EQ(Rational(7, 1).to_string(), "7");
  EXPECT_EQ(Rational(-3, 9).to_string(), "-1/3");
  EXPECT_THROW(Rational(1, 0), PreconditionError);
  EXPECT_THROW(half / Rational(0), PreconditionError);
  EXPECT_DOUBLE_EQ(Rational(3, 4).to_double(), 0.75);
}

}  // namespace
}  // namespace bitlevel::math
