// The shared worker pool: deterministic chunking, full coverage,
// exception propagation from the lowest chunk, and safe nesting.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hpp"

namespace bitlevel::support {
namespace {

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(8, 0, hits.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST(ThreadPoolTest, ChunkBoundariesAreDeterministic) {
  // Boundaries depend only on (chunks, items): the parallel pool and the
  // single-lane pool must hand out identical ranges.
  const std::size_t chunks = 7, items = 123;
  std::vector<std::pair<std::size_t, std::size_t>> parallel(chunks), serial(chunks);
  ThreadPool(4).parallel_for(chunks, 10, 10 + items,
                             [&](std::size_t c, std::size_t lo, std::size_t hi) {
                               parallel[c] = {lo, hi};
                             });
  ThreadPool(1).parallel_for(chunks, 10, 10 + items,
                             [&](std::size_t c, std::size_t lo, std::size_t hi) {
                               serial[c] = {lo, hi};
                             });
  EXPECT_EQ(parallel, serial);
  // Contiguous cover of [10, 133).
  EXPECT_EQ(parallel.front().first, 10u);
  EXPECT_EQ(parallel.back().second, 10u + items);
  for (std::size_t c = 1; c < chunks; ++c) {
    EXPECT_EQ(parallel[c].first, parallel[c - 1].second);
  }
}

TEST(ThreadPoolTest, MoreChunksThanLanesStillCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.parallel_for(16, 0, 16, [&](std::size_t, std::size_t lo, std::size_t hi) {
    ran += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, RethrowsLowestChunkAndRunsAllChunks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(8, 0, 8, [&](std::size_t c, std::size_t, std::size_t) {
      ++ran;
      if (c == 3 || c == 1 || c == 6) throw std::runtime_error("chunk " + std::to_string(c));
    });
    FAIL() << "expected the chunk exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 1");
  }
  EXPECT_EQ(ran.load(), 8);  // an error does not cancel the other chunks
}

TEST(ThreadPoolTest, ConcurrentThrowsStillPickLowestChunk) {
  // Every chunk throws, released together so the failures genuinely
  // race: the lowest-chunk-wins contract must hold regardless of which
  // lane finishes (or faults) first.
  ThreadPool pool(4);
  std::atomic<int> arrived{0};
  for (int round = 0; round < 20; ++round) {
    arrived = 0;
    try {
      pool.parallel_for(4, 0, 4, [&](std::size_t c, std::size_t, std::size_t) {
        ++arrived;
        while (arrived.load() < 4) {}  // barrier: all chunks in flight
        throw std::runtime_error("chunk " + std::to_string(c));
      });
      FAIL() << "expected the chunk exceptions to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 0") << "round " << round;
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  bool saw_worker_flag = false;
  pool.parallel_for(4, 0, 4, [&](std::size_t c, std::size_t, std::size_t) {
    if (c == 0) saw_worker_flag = ThreadPool::in_worker();
    // A nested fan-out must not deadlock on the (busy) shared lanes.
    pool.parallel_for(4, 0, 10, [&](std::size_t, std::size_t lo, std::size_t hi) {
      inner_total += static_cast<int>(hi - lo);
    });
  });
  EXPECT_EQ(inner_total.load(), 40);
  EXPECT_TRUE(saw_worker_flag);
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  int ran = 0;
  pool.parallel_for(4, 5, 5, [&](std::size_t, std::size_t, std::size_t) { ++ran; });
  EXPECT_EQ(ran, 0);
}

TEST(ThreadPoolTest, ResolveThreadsHonorsKnobThenEnvironment) {
  EXPECT_EQ(ThreadPool::resolve_threads(5), 5u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);

  const char* saved = std::getenv("BITLEVEL_THREADS");
  const std::string restore = saved != nullptr ? saved : "";
  setenv("BITLEVEL_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 3u);
  setenv("BITLEVEL_THREADS", "garbage", 1);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);  // falls back to hardware
  if (saved != nullptr) {
    setenv("BITLEVEL_THREADS", restore.c_str(), 1);
  } else {
    unsetenv("BITLEVEL_THREADS");
  }
}

}  // namespace
}  // namespace bitlevel::support
