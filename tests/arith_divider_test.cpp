// The non-restoring array divider: exhaustive/random functional
// exactness, the dependence triplet vs trace ground truth, and the
// schedule lower bound its control recurrence forces.
#include <gtest/gtest.h>

#include "analysis/trace.hpp"
#include "arith/divider.hpp"
#include "ir/kernels.hpp"
#include "mapping/feasibility.hpp"
#include "mapping/schedule.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bitlevel::arith {
namespace {

TEST(DividerTest, ExhaustiveSmall) {
  for (math::Int p = 1; p <= 4; ++p) {
    const NonRestoringDivider div(p);
    for (std::uint64_t b = 1; b < (1ULL << p); ++b) {
      for (std::uint64_t a = 0; a < (b << p); ++a) {
        const DivisionResult r = div.divide(a, b);
        EXPECT_EQ(r.quotient, a / b) << a << " / " << b << " p=" << p;
        EXPECT_EQ(r.remainder, a % b) << a << " / " << b << " p=" << p;
      }
    }
  }
}

TEST(DividerTest, RandomWide) {
  Xoshiro256 rng(8);
  const NonRestoringDivider div(16);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t b = 1 + rng.bits(16) % ((1ULL << 16) - 1);
    const std::uint64_t a = rng() % (b << 16);
    const DivisionResult r = div.divide(a, b);
    EXPECT_EQ(r.quotient, a / b);
    EXPECT_EQ(r.remainder, a % b);
  }
}

TEST(DividerTest, RejectsBadOperands) {
  const NonRestoringDivider div(4);
  EXPECT_THROW(div.divide(5, 0), PreconditionError);
  EXPECT_THROW(div.divide(16ULL * 3, 3), PreconditionError);  // quotient overflow
}

TEST(DividerTest, TripletMatchesTrace) {
  for (math::Int p : {2, 3, 5}) {
    const NonRestoringDivider div(p);
    const auto triplet = div.triplet();
    const auto trace = analysis::trace_dependences(div.access_program());
    const auto report = analysis::match_structure(triplet.deps, triplet.domain, trace);
    EXPECT_TRUE(report.ok) << "p=" << p << "\n" << report.to_string();
  }
}

// The control recurrence forces pi_1 >= p*pi_2 + 1, hence Theta(p^2)
// schedules — unlike multiplication, division does not pipeline to
// O(p) at the bit level.
TEST(DividerTest, ControlRecurrenceForcesQuadraticTime) {
  const math::Int p = 3;
  const NonRestoringDivider div(p);
  const auto triplet = div.triplet();
  const math::IntMat space{{0, 1}};  // linear array, one PE per cell column

  // With a control-return wire [-p], the optimal Pi = [p+1, 1] is
  // feasible and achieves p^2 + p.
  const mapping::InterconnectionPrimitives with_return{math::IntMat{{1, -1, -p, 0}},
                                                       "line+return"};
  const mapping::MappingMatrix t_opt(space, div.optimal_schedule());
  const auto ok = mapping::check_feasible(triplet.domain, triplet.deps, t_opt, with_return);
  EXPECT_TRUE(ok.ok) << ok.to_string();
  EXPECT_EQ(mapping::execution_time(div.optimal_schedule(), triplet.domain),
            div.optimal_total_time());

  // Without it (nearest-neighbour only), [p+1, 1] fails condition 2 —
  // the control cannot hop back across the row in one time unit.
  const mapping::InterconnectionPrimitives mesh{math::IntMat{{1, -1, 0}}, "line"};
  const auto bad = mapping::check_feasible(triplet.domain, triplet.deps, t_opt, mesh);
  EXPECT_FALSE(bad.ok);
  // Pi = [2p, 1] restores feasibility at (2p)(p-1) + p + 1 cycles.
  const mapping::MappingMatrix t_mesh(space, math::IntVec{2 * p, 1});
  const auto slow = mapping::check_feasible(triplet.domain, triplet.deps, t_mesh, mesh);
  EXPECT_TRUE(slow.ok) << slow.to_string();

  // No schedule with pi_1 <= p*pi_2 can satisfy condition 1 on d4.
  const mapping::MappingMatrix too_fast(space, math::IntVec{p, 1});
  const auto infeasible =
      mapping::check_feasible(triplet.domain, triplet.deps, too_fast, with_return);
  EXPECT_FALSE(infeasible.ok);
}

}  // namespace
}  // namespace bitlevel::arith
