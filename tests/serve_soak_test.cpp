// Soak the design-service daemon as a real subprocess: N clients x M
// mixed requests over one Unix socket, every served result
// byte-compared against the one-shot CLI document for the same flags,
// exactly one composition per distinct plan key process-wide, then an
// in-flight SIGTERM drain that must answer everything and exit 0.
//
// Client count and per-client request count scale with
// BITLEVEL_SOAK_CLIENTS / BITLEVEL_SOAK_REQUESTS (CI raises them; the
// defaults keep local and sanitizer runs fast).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "support/json.hpp"

namespace bitlevel {
namespace {

#ifndef BITLEVEL_DESIGN_BIN_PATH
#error "BITLEVEL_DESIGN_BIN_PATH must point at the bitlevel-design binary"
#endif

int env_int(const char* name, int fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  const int v = std::atoi(text);
  return v > 0 ? v : fallback;
}

std::string run_one_shot(const std::string& args) {
  const std::string command =
      std::string(BITLEVEL_DESIGN_BIN_PATH) + " " + args + " 2>/dev/null";
  std::string out;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return out;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0) out.append(buf, got);
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out;
}

/// Strip the CLI's trailing process-local cache counters: the daemon's
/// result is the same document without them (they are always the last
/// member, so the strip is a pure suffix cut).
std::string strip_plan_cache(const std::string& doc) {
  const std::size_t at = doc.rfind(",\"plan_cache\":{");
  if (at == std::string::npos) return doc;
  const std::size_t close = doc.find('}', at);
  if (close == std::string::npos) return doc;
  return doc.substr(0, at) + doc.substr(close + 1);
}

/// Strip process-state counters that legitimately differ between a
/// cold one-shot run and a warmed daemon. tile_cache_hits counts tile
/// shapes already resident at compose time — 0 for every one-shot, but
/// nonzero on the daemon once any client has composed the shape (the
/// rendezvous working as intended). Everything else must match byte
/// for byte.
std::string strip_warmth_counters(const std::string& doc) {
  std::string out = doc;
  const std::size_t at = out.find("\"tile_cache_hits\":");
  if (at == std::string::npos) return out;
  std::size_t end = at;
  while (end < out.size() && out[end] != ',' && out[end] != '}') ++end;
  if (end < out.size() && out[end] == ',') ++end;
  return out.erase(at, end - at);
}

/// One request in the soak mix: the wire line and the flag form whose
/// one-shot output it must match byte for byte.
struct Mix {
  std::string line;   ///< Request line sans id (id spliced per send).
  std::string flags;  ///< Equivalent one-shot CLI arguments.
  std::string key;    ///< The canonical plan key class (for miss count).
};

/// 6 requests over 5 distinct plan keys — simulate and batch on the
/// same kernel/u/p share a composition (execution knobs are not part
/// of the key), which the final miss count must prove. The tiled
/// request divides exactly (4/2 per dimension), so it composes ONE
/// tile shape (matmul_rect 2x2x2) no matter how many clients race it.
std::vector<Mix> soak_mix() {
  return {
      {"\"action\":\"simulate\",\"kernel\":\"matmul\",\"u\":2,\"p\":4",
       "--kernel matmul --u 2 --p 4 --action simulate --json", "matmul-u2-p4"},
      {"\"action\":\"batch\",\"kernel\":\"matmul\",\"u\":2,\"p\":4,\"batch\":4",
       "--kernel matmul --u 2 --p 4 --batch 4 --action batch --json", "matmul-u2-p4"},
      {"\"action\":\"simulate\",\"kernel\":\"scalar\",\"u\":4,\"p\":3",
       "--kernel scalar --u 4 --p 3 --action simulate --json", "scalar-u4-p3"},
      {"\"action\":\"design\",\"kernel\":\"matvec\",\"u\":2,\"v\":2,\"p\":3",
       "--kernel matvec --u 2 --v 2 --p 3 --action design --json", "matvec-u2-p3"},
      {"\"action\":\"fault-campaign\",\"kernel\":\"scalar\",\"u\":3,\"p\":3,"
       "\"fault_rates\":[0.01],\"retries\":1",
       "--kernel scalar --u 3 --p 3 --fault-rate 0.01 --retries 1 "
       "--action fault-campaign --json",
       "scalar-u3-p3"},
      {"\"action\":\"tiled\",\"kernel\":\"matmul\",\"u\":4,\"p\":3,"
       "\"tile_m\":2,\"tile_n\":2,\"tile_k\":2",
       "--kernel matmul --u 4 --p 3 --tile 2,2,2 --action tiled --json",
       "matmul_rect-2x2x2-p3"},
  };
}

class SoakDaemon {
 public:
  explicit SoakDaemon(const std::string& socket_path, std::vector<std::string> extra_args = {})
      : socket_path_(socket_path), log_path_(socket_path + ".log") {
    pid_ = fork();
    if (pid_ == 0) {
      FILE* log = std::freopen(log_path_.c_str(), "w", stderr);
      (void)log;
      std::vector<std::string> args = {BITLEVEL_DESIGN_BIN_PATH, "--serve",     "--listen",
                                       "unix:" + socket_path_,   "--workers",  "4",
                                       "--queue",                "256"};
      for (std::string& arg : extra_args) args.push_back(std::move(arg));
      std::vector<char*> argv;
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(BITLEVEL_DESIGN_BIN_PATH, argv.data());
      std::_Exit(127);  // exec failed
    }
    // The daemon is up once the socket accepts; poll with a deadline.
    for (int i = 0; i < 200; ++i) {
      try {
        serve::Client probe;
        probe.connect("unix:" + socket_path_);
        return;
      } catch (const Error&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    }
  }

  ~SoakDaemon() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
    std::remove(socket_path_.c_str());
    std::remove(log_path_.c_str());
  }

  /// SIGTERM, wait, return the exit code (-1 on abnormal death).
  int terminate() {
    if (pid_ <= 0) return -1;
    kill(pid_, SIGTERM);
    int status = 0;
    waitpid(pid_, &status, 0);
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    pid_ = -1;
    return code;
  }

  /// The daemon's stderr log (startup banner + drain report).
  std::string log() const {
    std::string text;
    FILE* f = std::fopen(log_path_.c_str(), "r");
    if (f == nullptr) return text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
    std::fclose(f);
    return text;
  }

  std::string endpoint() const { return "unix:" + socket_path_; }

 private:
  std::string socket_path_;
  std::string log_path_;
  pid_t pid_ = -1;
};

TEST(ServeSoakTest, ConcurrentClientsMatchOneShotOutputByteForByte) {
  const int clients = env_int("BITLEVEL_SOAK_CLIENTS", 8);
  const int requests = env_int("BITLEVEL_SOAK_REQUESTS", 100);
  const std::vector<Mix> mix = soak_mix();

  // One-shot reference documents, computed once up front.
  std::vector<std::string> expected;
  expected.reserve(mix.size());
  for (const Mix& m : mix) {
    expected.push_back(strip_warmth_counters(strip_plan_cache(run_one_shot(m.flags))));
    ASSERT_TRUE(json_valid(expected.back())) << m.flags << "\n" << expected.back();
  }

  const std::string socket_path =
      "/tmp/bitlevel-soak-" + std::to_string(static_cast<long>(getpid())) + ".sock";
  SoakDaemon daemon(socket_path);

  std::vector<std::thread> threads;
  std::vector<int> mismatches(clients, 0);
  std::vector<int> failures(clients, 0);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        serve::Client client;
        client.connect(daemon.endpoint());
        for (int r = 0; r < requests; ++r) {
          const std::size_t pick = static_cast<std::size_t>((c + r)) % mix.size();
          const std::string line = "{\"id\":" + std::to_string(c * requests + r) + "," +
                                   mix[pick].line + "}";
          const std::string response = client.roundtrip(line);
          const std::string result =
              strip_warmth_counters(json_member_text(response, "result"));
          if (result != expected[pick]) ++mismatches[c];
        }
      } catch (const std::exception&) {
        ++failures[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < clients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c << " died";
    EXPECT_EQ(mismatches[c], 0) << "client " << c << " saw non-identical results";
  }

  // Exactly one composition per distinct plan key, process-wide,
  // regardless of client count: the shared cache's whole point.
  std::map<std::string, int> distinct;
  for (const Mix& m : mix) distinct[m.key] = 1;
  {
    serve::Client client;
    client.connect(daemon.endpoint());
    const std::string stats = client.roundtrip("{\"id\":0,\"action\":\"stats\"}");
    const JsonValue doc = json_parse(stats);
    const JsonValue* result = doc.find("result");
    ASSERT_NE(result, nullptr) << stats;
    const JsonValue* plan_cache = result->find("plan_cache");
    ASSERT_NE(plan_cache, nullptr) << stats;
    EXPECT_EQ(plan_cache->find("misses")->int_v,
              static_cast<std::int64_t>(distinct.size()))
        << stats;
    EXPECT_EQ(plan_cache->find("leaked_plans")->int_v, 0) << stats;
  }

  // Graceful exit: SIGTERM drains and exits 0, and the drain report
  // proves no plan reference survived.
  const int exit_code = daemon.terminate();
  EXPECT_EQ(exit_code, 0) << daemon.log();
  const std::string log = daemon.log();
  EXPECT_NE(log.find("\"drained\":true"), std::string::npos) << log;
  EXPECT_NE(log.find("\"leaked_plans\":0"), std::string::npos) << log;
}

TEST(ServeSoakTest, SigtermWithPipelinedRequestsAnswersEverythingFirst) {
  const std::string socket_path =
      "/tmp/bitlevel-soak-drain-" + std::to_string(static_cast<long>(getpid())) + ".sock";
  SoakDaemon daemon(socket_path);

  serve::Client client;
  client.connect(daemon.endpoint());
  // Pipeline a burst and wait for the stats marker: every line before
  // it is then admitted, so the drain owes us every response.
  constexpr int kBurst = 12;
  for (int i = 0; i < kBurst; ++i) {
    client.send_line("{\"id\":" + std::to_string(i) +
                     ",\"action\":\"batch\",\"kernel\":\"scalar\",\"u\":3,\"p\":3,"
                     "\"batch\":4}");
  }
  client.send_line("{\"id\":999,\"action\":\"stats\"}");

  // Wait for the marker's response first: only then is every burst
  // line provably admitted (SIGTERM earlier could race the reads and
  // legitimately drop unadmitted lines).
  int answered = 0;
  bool marker_seen = false;
  std::string line;
  while (!marker_seen && client.recv_line(&line)) {
    const JsonValue doc = json_parse(line);
    const JsonValue* ok = doc.find("ok");
    ASSERT_NE(ok, nullptr) << line;
    EXPECT_TRUE(ok->bool_v) << line;
    ++answered;
    const JsonValue* id = doc.find("id");
    marker_seen = id != nullptr && id->is_int() && id->int_v == 999;
  }
  ASSERT_TRUE(marker_seen);

  const int exit_code = daemon.terminate();
  EXPECT_EQ(exit_code, 0) << daemon.log();

  while (client.recv_line(&line)) {
    const JsonValue doc = json_parse(line);
    const JsonValue* ok = doc.find("ok");
    ASSERT_NE(ok, nullptr) << line;
    EXPECT_TRUE(ok->bool_v) << line;
    ++answered;
  }
  EXPECT_EQ(answered, kBurst + 1);
}

// The mixed-deadline matrix: generous, tight and already-expired
// deadlines interleaved through one daemon. Completed results must be
// byte-identical to one-shot documents (a deadline never changes a
// completed document's bytes), expired ones must be shed with the
// retryable deadline_exceeded error, and the drain ledger must balance
// to the request count exactly.
TEST(ServeSoakTest, MixedDeadlineMatrixShedsAndServesDeterministically) {
  const std::string heavy_flags =
      "--kernel scalar --u 4 --p 6 --batch 512 --sliced off --action batch --json";
  const std::string light_flags = "--kernel scalar --u 4 --p 4 --action simulate --json";
  const std::string heavy_ref = strip_plan_cache(run_one_shot(heavy_flags));
  const std::string light_ref = strip_plan_cache(run_one_shot(light_flags));
  ASSERT_TRUE(json_valid(heavy_ref)) << heavy_ref;
  ASSERT_TRUE(json_valid(light_ref)) << light_ref;

  const std::string socket_path =
      "/tmp/bitlevel-soak-deadline-" + std::to_string(static_cast<long>(getpid())) + ".sock";
  SoakDaemon daemon(socket_path);
  serve::Client client;
  client.connect(daemon.endpoint());

  // Saturate all 4 workers with heavy batches, then pipeline 4
  // requests whose 1ms budgets are guaranteed to lapse while they
  // queue behind the heavy work: every one must be shed at pop time.
  constexpr int kHeavy = 8;
  constexpr int kExpired = 4;
  for (int i = 0; i < kHeavy; ++i) {
    client.send_line("{\"id\":" + std::to_string(i) +
                     ",\"action\":\"batch\",\"kernel\":\"scalar\",\"u\":4,\"p\":6,"
                     "\"batch\":512,\"sliced\":\"off\"}");
  }
  for (int i = kHeavy; i < kHeavy + kExpired; ++i) {
    client.send_line("{\"id\":" + std::to_string(i) +
                     ",\"action\":\"simulate\",\"kernel\":\"scalar\",\"u\":3,\"p\":3,"
                     "\"deadline_ms\":1}");
  }
  // Responses interleave in completion order across the worker pool:
  // classify by id.
  int heavy_identical = 0;
  int shed = 0;
  for (int i = 0; i < kHeavy + kExpired; ++i) {
    std::string line;
    ASSERT_TRUE(client.recv_line(&line));
    const JsonValue doc = json_parse(line);
    const JsonValue* id = doc.find("id");
    ASSERT_TRUE(id != nullptr && id->is_int()) << line;
    if (id->int_v < kHeavy) {
      EXPECT_TRUE(doc.find("ok")->bool_v) << line;
      if (json_member_text(line, "result") == heavy_ref) ++heavy_identical;
    } else {
      const JsonValue* error = doc.find("error");
      ASSERT_TRUE(error != nullptr && error->is_object()) << line;
      EXPECT_EQ(error->find("code")->string_v, "deadline_exceeded") << line;
      EXPECT_TRUE(error->find("retryable")->bool_v) << line;
      ++shed;
    }
  }
  EXPECT_EQ(heavy_identical, kHeavy);
  EXPECT_EQ(shed, kExpired);

  // A generous deadline changes nothing about the result bytes.
  const std::string generous = client.roundtrip(
      "{\"id\":100,\"action\":\"simulate\",\"kernel\":\"scalar\",\"u\":4,\"p\":4,"
      "\"deadline_ms\":60000}");
  EXPECT_EQ(json_member_text(generous, "result"), light_ref) << generous;

  // Tight deadlines on an idle daemon either complete (byte-identical)
  // or cancel mid-execution with the retryable error — never anything
  // else, and never a torn document.
  constexpr int kTight = 6;
  for (int i = 0; i < kTight; ++i) {
    const std::string response = client.roundtrip(
        "{\"id\":" + std::to_string(200 + i) +
        ",\"action\":\"simulate\",\"kernel\":\"scalar\",\"u\":4,\"p\":4,"
        "\"deadline_ms\":20}");
    const JsonValue doc = json_parse(response);
    if (doc.find("ok")->bool_v) {
      EXPECT_EQ(json_member_text(response, "result"), light_ref) << response;
    } else {
      const JsonValue* error = doc.find("error");
      ASSERT_TRUE(error != nullptr && error->is_object()) << response;
      EXPECT_EQ(error->find("code")->string_v, "deadline_exceeded") << response;
      EXPECT_TRUE(error->find("retryable")->bool_v) << response;
    }
  }

  // The drain report's ledger must balance to the exact request count.
  const int exit_code = daemon.terminate();
  EXPECT_EQ(exit_code, 0) << daemon.log();
  const std::string log = daemon.log();
  const std::size_t at = log.find("{\"drained\":true");
  ASSERT_NE(at, std::string::npos) << log;
  const JsonValue report = json_parse(log.substr(at, log.find('\n', at) - at));
  ASSERT_TRUE(report.is_object()) << log;
  const std::int64_t total = kHeavy + kExpired + 1 + kTight;
  EXPECT_EQ(report.find("requests")->int_v, total) << log;
  EXPECT_EQ(report.find("requests")->int_v,
            report.find("served_ok")->int_v + report.find("served_error")->int_v +
                report.find("rejected_overloaded")->int_v +
                report.find("rejected_oversized")->int_v +
                report.find("rejected_deadline")->int_v)
      << log;
  // The 4 queue-expired requests are shed rejections; tight-deadline
  // cancellations that started executing count as served_error.
  EXPECT_GE(report.find("rejected_deadline")->int_v, kExpired) << log;
  EXPECT_EQ(report.find("leaked_plans")->int_v, 0) << log;
}

// The coalescer's headline case as a subprocess soak: a flood of
// single-item single-multiply clients against one warm plan. With a
// generous window the daemon MUST form multi-member lane groups
// (drain report coalesced_groups > 0), every response must be correct,
// and the ledger must balance exactly with leaked_plans 0.
TEST(ServeSoakTest, SingleItemFloodCoalescesIntoLaneGroups) {
  const std::string socket_path =
      "/tmp/bitlevel-soak-coalesce-" + std::to_string(static_cast<long>(getpid())) + ".sock";
  // Two workers + a 20ms window: one worker leads and holds the group
  // open while the other keeps popping joiners — a group of >= 2 is
  // guaranteed once any two requests overlap within 20ms, which a
  // lockstep flood of 16 clients cannot avoid.
  SoakDaemon daemon(socket_path,
                    {"--workers", "2", "--coalesce-window-us", "20000"});

  // Warm the plan so group execution is pure lane work.
  {
    serve::Client warm;
    warm.connect(daemon.endpoint());
    const std::string response = warm.roundtrip(
        "{\"id\":0,\"action\":\"batch\",\"kernel\":\"matmul\",\"u\":2,\"p\":3,"
        "\"batch\":1,\"seed\":999}");
    ASSERT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  }

  constexpr int kClients = 16;
  constexpr int kRequests = 4;
  std::vector<std::thread> threads;
  std::vector<int> bad(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        serve::Client client;
        client.connect(daemon.endpoint());
        for (int r = 0; r < kRequests; ++r) {
          const std::string response = client.roundtrip(
              "{\"id\":" + std::to_string(c * kRequests + r) +
              ",\"action\":\"batch\",\"kernel\":\"matmul\",\"u\":2,\"p\":3,"
              "\"batch\":1,\"seed\":" + std::to_string(c * kRequests + r + 1) + "}");
          const JsonValue doc = json_parse(response);
          const JsonValue* ok = doc.find("ok");
          if (ok == nullptr || !ok->is_bool() || !ok->bool_v) ++bad[c];
          const std::string result = json_member_text(response, "result");
          if (result.find("\"correct\":true") == std::string::npos) ++bad[c];
        }
      } catch (const std::exception&) {
        ++bad[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(bad[c], 0) << "client " << c;

  const int exit_code = daemon.terminate();
  EXPECT_EQ(exit_code, 0) << daemon.log();
  const std::string log = daemon.log();
  const std::size_t at = log.find("{\"drained\":true");
  ASSERT_NE(at, std::string::npos) << log;
  const JsonValue report = json_parse(log.substr(at, log.find('\n', at) - at));
  ASSERT_TRUE(report.is_object()) << log;
  EXPECT_GT(report.find("coalesced_groups")->int_v, 0) << log;
  EXPECT_GE(report.find("coalesced_items")->int_v,
            2 * report.find("coalesced_groups")->int_v)
      << log;
  EXPECT_EQ(report.find("requests")->int_v, kClients * kRequests + 1) << log;
  EXPECT_EQ(report.find("requests")->int_v,
            report.find("served_ok")->int_v + report.find("served_error")->int_v +
                report.find("rejected_overloaded")->int_v +
                report.find("rejected_oversized")->int_v +
                report.find("rejected_deadline")->int_v)
      << log;
  EXPECT_EQ(report.find("served_error")->int_v, 0) << log;
  EXPECT_EQ(report.find("leaked_plans")->int_v, 0) << log;
}

}  // namespace
}  // namespace bitlevel
