// Problem pipelining: streaming independent products through one array
// at the initiation interval, with utilization rising toward 1 — the
// throughput regime systolic arrays are built for.
#include <gtest/gtest.h>

#include "arch/matmul_arrays.hpp"
#include "arch/bit_array.hpp"
#include "core/expansion.hpp"
#include "core/workload.hpp"
#include "ir/kernels.hpp"
#include "mapping/explore.hpp"
#include "mapping/schedule.hpp"
#include "core/evaluator.hpp"
#include "pipeline/cache.hpp"
#include "support/error.hpp"

namespace bitlevel::arch {
namespace {

TEST(BatchTest, StreamedProductsAreCorrect) {
  const math::Int u = 3, p = 4, batches = 5;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  std::vector<WordMatrix> xs, ys;
  for (math::Int b = 0; b < batches; ++b) {
    xs.push_back(WordMatrix::random(u, bound, 100 + static_cast<std::uint64_t>(b)));
    ys.push_back(WordMatrix::random(u, bound, 200 + static_cast<std::uint64_t>(b)));
  }
  const auto result = array.multiply_batch(xs, ys);
  ASSERT_EQ(result.z.size(), static_cast<std::size_t>(batches));
  for (math::Int b = 0; b < batches; ++b) {
    EXPECT_EQ(result.z[static_cast<std::size_t>(b)],
              WordMatrix::multiply_reference(xs[static_cast<std::size_t>(b)],
                                             ys[static_cast<std::size_t>(b)]))
        << "batch " << b;
  }
}

TEST(BatchTest, InitiationIntervalAndTotalTime) {
  const math::Int u = 3, p = 3;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  EXPECT_EQ(array.batch_initiation_interval(), u);
  // The hand-derived interval agrees with the general computation.
  const auto single = core::expand(ir::kernels::matmul(u), p, core::Expansion::kII);
  EXPECT_EQ(mapping::min_initiation_interval(matmul_mapping(MatmulMapping::kFig4, p),
                                             single.domain),
            u);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  for (math::Int batches : {1, 2, 6}) {
    std::vector<WordMatrix> xs, ys;
    for (math::Int b = 0; b < batches; ++b) {
      xs.push_back(WordMatrix::random(u, bound, 11 + static_cast<std::uint64_t>(b)));
      ys.push_back(WordMatrix::random(u, bound, 22 + static_cast<std::uint64_t>(b)));
    }
    const auto result = array.multiply_batch(xs, ys);
    // One problem every u cycles after the first:
    EXPECT_EQ(result.stats.cycles, array.predicted_cycles() + (batches - 1) * u);
    // Same silicon as the single-problem array.
    EXPECT_EQ(result.stats.pe_count, array.predicted_processors());
  }
}

TEST(BatchTest, UtilizationApproachesSaturation) {
  const math::Int u = 3, p = 3;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  double last = 0.0;
  for (math::Int batches : {1, 4, 16}) {
    std::vector<WordMatrix> xs(static_cast<std::size_t>(batches),
                               WordMatrix::random(u, bound, 1));
    std::vector<WordMatrix> ys(static_cast<std::size_t>(batches),
                               WordMatrix::random(u, bound, 2));
    const auto result = array.multiply_batch(xs, ys);
    EXPECT_GT(result.stats.pe_utilization, last) << "batches " << batches;
    last = result.stats.pe_utilization;
  }
  // In the limit, every PE computes u times per u-cycle interval: the
  // streamed utilization exceeds 80% already at 16 problems.
  EXPECT_GT(last, 0.8);
}

TEST(BatchTest, Fig5AlsoStreams) {
  const math::Int u = 2, p = 3;
  const BitLevelMatmulArray array(MatmulMapping::kFig5, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  std::vector<WordMatrix> xs{WordMatrix::random(u, bound, 5), WordMatrix::random(u, bound, 6)};
  std::vector<WordMatrix> ys{WordMatrix::random(u, bound, 7), WordMatrix::random(u, bound, 8)};
  const auto result = array.multiply_batch(xs, ys);
  for (std::size_t b = 0; b < 2; ++b) {
    EXPECT_EQ(result.z[b], WordMatrix::multiply_reference(xs[b], ys[b]));
  }
}

// Generic streaming: batch ANY kernel via core::batch_model, extend the
// explored mapping's schedule by the computed minimal initiation
// interval, and run the batched array — here on convolution, whose
// mapping the explorer finds rather than the paper publishing it.
TEST(BatchTest, GenericStreamingOnConvolution) {
  const math::Int n = 4, k = 3, p = 4, batches = 3;
  const auto model = ir::kernels::convolution1d(n, k);
  const auto single = core::expand(model, p, core::Expansion::kII);

  // Find a mapping for the single-problem structure.
  mapping::ExploreOptions options;
  options.max_direction_sets = 16;
  options.schedule_bound = 3;
  const auto prims = mapping::InterconnectionPrimitives::mesh2d_diag();
  const auto found = mapping::explore_designs(single.domain, single.deps, prims,
                                              mapping::DesignObjective::kTime, options);
  ASSERT_FALSE(found.designs.empty());
  const mapping::MappingMatrix& t1 = found.designs.front().t;

  // Batch the model and extend T with the minimal initiation interval.
  const math::Int interval = mapping::min_initiation_interval(t1, single.domain);
  const auto batched = core::batch_model(model, batches);
  const auto s = core::expand(batched, p, core::Expansion::kII);
  std::vector<math::IntVec> rows;
  for (std::size_t r = 0; r + 1 < t1.k(); ++r) rows.push_back(math::concat({0}, t1.matrix().row(r)));
  const mapping::MappingMatrix tb(math::IntMat::from_rows(rows),
                                  math::concat({interval}, t1.schedule()));
  const arch::BitLevelArray array(s, tb, prims);

  // Per-batch workloads, concatenated along the batch axis.
  std::vector<core::Workload> loads;
  for (math::Int b = 0; b < batches; ++b) {
    loads.push_back(
        core::make_safe_workload(model, p, core::Expansion::kII,
                                 900 + static_cast<std::uint64_t>(b)));
  }
  auto strip = [](const math::IntVec& j) { return math::IntVec(j.begin() + 1, j.end()); };
  const auto run = array.run(
      [&](const math::IntVec& j) {
        return loads[static_cast<std::size_t>(j[0] - 1)].x.at(strip(j));
      },
      [&](const math::IntVec& j) {
        return loads[static_cast<std::size_t>(j[0] - 1)].y.at(strip(j));
      });

  ASSERT_FALSE(run.z.empty());
  for (const auto& [j, v] : run.z) {
    const auto& w = loads[static_cast<std::size_t>(j[0] - 1)];
    const auto ref = core::evaluate_word_reference(model, w.x_fn(), w.y_fn());
    EXPECT_EQ(v, ref.at(strip(j))) << math::to_string(j);
  }
  // Streaming adds (batches - 1) * interval cycles to the single run.
  EXPECT_EQ(run.stats.cycles,
            found.designs.front().total_time + (batches - 1) * interval);
}

// The satellite fix this PR pins down: multiply_batch used to re-run
// core::expand on the batched model for EVERY call; it must now hit the
// plan cache — exactly one composition per (u, p, mapping, batch) key
// per process, with repeats served as hits.
TEST(BatchTest, RepeatedBatchesComposeOncePerKey) {
  const math::Int u = 2, p = 5;  // (u, p) unique to this test's keys
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  std::vector<WordMatrix> xs{WordMatrix::random(u, bound, 31), WordMatrix::random(u, bound, 32)};
  std::vector<WordMatrix> ys{WordMatrix::random(u, bound, 41), WordMatrix::random(u, bound, 42)};

  auto& cache = pipeline::global_plan_cache();
  const pipeline::PlanCacheStats before = cache.stats();
  const auto first = array.multiply_batch(xs, ys);
  const pipeline::PlanCacheStats after_first = cache.stats();
  // First batch of this shape: exactly one new composition.
  EXPECT_EQ(after_first.misses - before.misses, 1u);

  const auto second = array.multiply_batch(xs, ys);
  const pipeline::PlanCacheStats after_second = cache.stats();
  // Second identical batch: served from the cache, no new expansion.
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_EQ(after_second.hits - after_first.hits, 1u);

  // And the cached run is bit-identical to the first.
  ASSERT_EQ(first.z.size(), second.z.size());
  for (std::size_t b = 0; b < first.z.size(); ++b) EXPECT_EQ(first.z[b], second.z[b]);
  EXPECT_EQ(first.stats.cycles, second.stats.cycles);
}

// The bit-sliced lane path: 64 problems per machine pass, each product
// equal to the reference and to the scalar multiply() of the same
// operands, across memory modes and both published mappings.
TEST(BatchTest, SlicedBatchMatchesReferenceAndScalar) {
  const math::Int u = 3, p = 4;
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  for (const MatmulMapping which : {MatmulMapping::kFig4, MatmulMapping::kFig5}) {
    BitLevelMatmulArray array(which, u, p);
    for (const sim::MemoryMode memory :
         {sim::MemoryMode::kDense, sim::MemoryMode::kStreaming}) {
      array.set_memory_mode(memory);
      std::vector<WordMatrix> xs, ys;
      for (std::uint64_t b = 0; b < 5; ++b) {
        xs.push_back(WordMatrix::random(u, bound, 300 + b));
        ys.push_back(WordMatrix::random(u, bound, 400 + b));
      }
      // Default compiled=kAuto rides the plan's compiled schedule.
      const SlicedBatchRunResult sliced =
          array.multiply_batch_sliced(xs, ys, pipeline::SlicedMode::kOn);
      EXPECT_EQ(sliced.compiled_groups, 1);
      EXPECT_EQ(sliced.compiled_items, 5);
      EXPECT_EQ(sliced.sliced_items, 0);
      EXPECT_EQ(sliced.scalar_items, 0);
      // compiled=kOff pins the interpreted 64-lane engine; products must
      // agree bit for bit.
      const SlicedBatchRunResult interpreted = array.multiply_batch_sliced(
          xs, ys, pipeline::SlicedMode::kOn, pipeline::SlicedMode::kOff);
      EXPECT_EQ(interpreted.sliced_groups, 1);
      EXPECT_EQ(interpreted.sliced_items, 5);
      EXPECT_EQ(interpreted.compiled_items, 0);
      ASSERT_EQ(interpreted.z.size(), xs.size());
      for (std::size_t b = 0; b < xs.size(); ++b) {
        EXPECT_EQ(interpreted.z[b], sliced.z[b]) << "compiled vs interpreted item " << b;
      }
      ASSERT_EQ(sliced.z.size(), xs.size());
      for (std::size_t b = 0; b < xs.size(); ++b) {
        EXPECT_EQ(sliced.z[b], WordMatrix::multiply_reference(xs[b], ys[b])) << "item " << b;
        const MatmulRunResult scalar = array.multiply(xs[b], ys[b]);
        EXPECT_EQ(sliced.z[b], scalar.z) << "item " << b;
        EXPECT_EQ(sliced.stats.cycles, scalar.stats.cycles);
        EXPECT_EQ(sliced.stats.pe_count, scalar.stats.pe_count);
        EXPECT_EQ(sliced.stats.computations, scalar.stats.computations);
      }
    }
  }
}

TEST(BatchTest, RejectsMismatchedBatches) {
  const BitLevelMatmulArray array(MatmulMapping::kFig4, 2, 3);
  std::vector<WordMatrix> xs{WordMatrix(2)};
  std::vector<WordMatrix> ys;
  EXPECT_THROW(array.multiply_batch(xs, ys), PreconditionError);
}

}  // namespace
}  // namespace bitlevel::arch
