// Unit tests for the routing machinery: displacement decomposition over
// interconnection primitives, the K-matrix solver, and the primitive
// factories, including reproduction of the paper's published K matrices.
#include <gtest/gtest.h>

#include "mapping/feasibility.hpp"
#include "mapping/kmatrix.hpp"
#include "mapping/transform.hpp"
#include "support/error.hpp"

namespace bitlevel::mapping {
namespace {

TEST(DecompositionTest, FindsMinimalHops) {
  const auto prims = InterconnectionPrimitives::mesh2d_diag();  // [1,0],[0,1],[1,-1],[0,0]
  // [2, -1] = [1,0] + [1,-1]: two hops.
  const auto d = decompose_displacement(prims, {2, -1}, 5);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->hops, 2);
  EXPECT_EQ(prims.p.mul(d->counts), (IntVec{2, -1}));
}

TEST(DecompositionTest, ZeroTargetIsFree) {
  const auto prims = InterconnectionPrimitives::mesh2d();
  const auto d = decompose_displacement(prims, {0, 0}, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->hops, 0);
}

TEST(DecompositionTest, BudgetBinds) {
  const auto prims = InterconnectionPrimitives::mesh2d();
  // [3, 0] needs three unit hops; a budget of 2 must fail.
  EXPECT_FALSE(decompose_displacement(prims, {3, 0}, 2).has_value());
  EXPECT_TRUE(decompose_displacement(prims, {3, 0}, 3).has_value());
}

TEST(DecompositionTest, UnreachableDisplacement) {
  // Only eastward links: a westward displacement is unreachable.
  const InterconnectionPrimitives east{math::IntMat{{1}, {0}}, "east-only"};
  EXPECT_FALSE(decompose_displacement(east, {-1, 0}, 10).has_value());
}

// The paper's K (4.3): columns decompose S*D over P of (4.3) with the
// hop totals 1,1,(0|1),1,1,1,2 — our solver reproduces the same hop
// counts (the decomposition itself is unique here except for the
// stationary column).
TEST(KMatrixTest, ReproducesPaperK43HopCounts) {
  const math::Int p = 3;
  const auto prims = InterconnectionPrimitives::fig4(p);
  // S*D of (4.4), columns x, y, z, d4, d5, d6, d7.
  const math::IntMat sd{{0, p, 0, 1, 0, 1, 0}, {p, 0, 0, 0, 1, -1, 2}};
  const math::IntVec pi_d{1, 1, 1, 2, 1, 1, 2};
  const auto k = solve_k_matrix(prims, sd, pi_d);
  ASSERT_TRUE(k.has_value());
  const math::IntVec expected_hops{1, 1, 0, 1, 1, 1, 2};
  for (std::size_t i = 0; i < 7; ++i) {
    math::Int hops = 0;
    for (std::size_t j = 0; j < prims.count(); ++j) hops += k->at(j, i);
    EXPECT_EQ(hops, expected_hops[i]) << "column " << i;
    EXPECT_EQ(prims.p.mul(k->col(i)), sd.col(i)) << "column " << i;
  }
}

TEST(KMatrixTest, ReportsBadColumn) {
  const auto prims = InterconnectionPrimitives::mesh2d();
  const math::IntMat sd{{3, 0}, {0, 0}};
  const math::IntVec pi_d{1, 1};  // column 0 needs 3 hops in 1 time unit
  std::size_t bad = 99;
  EXPECT_FALSE(solve_k_matrix(prims, sd, pi_d, &bad).has_value());
  EXPECT_EQ(bad, 0u);
}

TEST(PrimitivesTest, Factories) {
  EXPECT_EQ(InterconnectionPrimitives::mesh2d().count(), 5u);
  EXPECT_EQ(InterconnectionPrimitives::mesh2d_diag().count(), 4u);
  EXPECT_EQ(InterconnectionPrimitives::fig4(5).count(), 6u);
  EXPECT_EQ(InterconnectionPrimitives::fig4(5).max_wire_length(), 5);
  EXPECT_EQ(InterconnectionPrimitives::mesh2d_diag().max_wire_length(), 2);
  EXPECT_THROW(InterconnectionPrimitives::fig4(0), PreconditionError);
}

TEST(RoutingDescriptionTest, MentionsWiresAndBuffers) {
  const math::Int p = 4;
  const auto prims = InterconnectionPrimitives::fig4(p);
  ir::DependenceMatrix deps;
  deps.add({{0, 1, 0, 0, 0}, "x", ir::ValidityRegion::all()});
  deps.add({{0, 0, 1, 0, 0}, "z", ir::ValidityRegion::all()});
  deps.add({{0, 0, 0, 1, 0}, "x", ir::ValidityRegion::all()});
  const MappingMatrix t(math::IntMat{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}, {1, 1, 1, 2, 1}});
  const math::IntVec pi_d{1, 1, 2};
  const auto k = solve_k_matrix(prims, t.space().mul(deps.as_matrix()), pi_d);
  ASSERT_TRUE(k.has_value());
  const std::string text = describe_routing(deps, t, prims, *k);
  EXPECT_NE(text.find("[0, 4]"), std::string::npos);       // the long wire
  EXPECT_NE(text.find("(stationary)"), std::string::npos);  // resident z
  EXPECT_NE(text.find("buffer register"), std::string::npos);  // d4 slack
}

TEST(TransformTest, SpaceTimeSplit) {
  const MappingMatrix t(math::IntMat{{2, 0, 1}, {0, 3, 0}, {1, 1, 1}});
  EXPECT_EQ(t.k(), 3u);
  EXPECT_EQ(t.n(), 3u);
  EXPECT_EQ(t.space(), (math::IntMat{{2, 0, 1}, {0, 3, 0}}));
  EXPECT_EQ(t.schedule(), (math::IntVec{1, 1, 1}));
  EXPECT_EQ(t.processor({1, 1, 1}), (math::IntVec{3, 3}));
  EXPECT_EQ(t.time({1, 2, 3}), 6);
  EXPECT_EQ(t.apply({1, 1, 1}), (math::IntVec{3, 3, 3}));
  const MappingMatrix built(math::IntMat{{1, 0}}, math::IntVec{2, 1});
  EXPECT_EQ(built.matrix(), (math::IntMat{{1, 0}, {2, 1}}));
}

}  // namespace
}  // namespace bitlevel::mapping
