// Theorem 3.1: the composed bit-level dependence structure equals the
// ground truth extracted from the independently generated bit-level
// program — edge for edge, for both expansions, across kernels and
// operand widths.
#include <gtest/gtest.h>

#include "core/expansion.hpp"
#include "core/verify.hpp"
#include "ir/kernels.hpp"
#include "support/error.hpp"

namespace bitlevel {
namespace {

using core::Expansion;

struct Case {
  std::string name;
  ir::WordLevelModel model;
  math::Int p;
  Expansion expansion;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (Expansion e : {Expansion::kI, Expansion::kII}) {
    const char* tag = e == Expansion::kI ? "expI" : "expII";
    for (math::Int p : {2, 3, 4}) {
      cases.push_back({std::string("scalar_u4_p") + std::to_string(p) + "_" + tag,
                       ir::kernels::scalar_chain(1, 4, 1), p, e});
    }
    cases.push_back({std::string("matmul_u2_p3_") + tag, ir::kernels::matmul(2), 3, e});
    cases.push_back({std::string("matmul_u3_p2_") + tag, ir::kernels::matmul(3), 2, e});
    cases.push_back({std::string("conv_n4_k3_p3_") + tag, ir::kernels::convolution1d(4, 3), 3, e});
    cases.push_back({std::string("matvec_3x4_p3_") + tag, ir::kernels::matvec(3, 4), 3, e});
    cases.push_back({std::string("transform_n3_p2_") + tag, ir::kernels::transform(3), 2, e});
  }
  return cases;
}

class Theorem31Test : public ::testing::TestWithParam<Case> {};

TEST_P(Theorem31Test, ComposedStructureMatchesTrace) {
  const Case& c = GetParam();
  const core::VerificationReport report = core::verify_expansion(c.model, c.p, c.expansion);
  EXPECT_TRUE(report.ok()) << report.match.to_string();
  EXPECT_GT(report.traced_edges, 0u);
}

INSTANTIATE_TEST_SUITE_P(Kernels, Theorem31Test, ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.name;
                         });

// The composed matmul structure must be exactly the paper's (3.12):
// seven columns with the documented distance vectors and causes.
TEST(ExpansionTest, MatmulExpansionIIMatchesEq312) {
  const auto s = core::expand(ir::kernels::matmul(3), 3, Expansion::kII);
  ASSERT_EQ(s.deps.size(), 7u);
  const math::IntMat d = s.deps.as_matrix();
  // Columns in x, y, z, d4, d5, d6, d7 order (the paper's (3.12) lists
  // y before x; the set is identical).
  const math::IntMat expected{{0, 1, 0, 0, 0, 0, 0},
                              {1, 0, 0, 0, 0, 0, 0},
                              {0, 0, 1, 0, 0, 0, 0},
                              {0, 0, 0, 1, 0, 1, 0},
                              {0, 0, 0, 0, 1, -1, 2}};
  EXPECT_EQ(d, expected);
  EXPECT_EQ(s.deps[0].cause, "x");
  EXPECT_EQ(s.deps[1].cause, "y");
  EXPECT_EQ(s.deps[2].cause, "z");
  EXPECT_EQ(s.deps[3].cause, "x");
  EXPECT_EQ(s.deps[4].cause, "y,c");
  EXPECT_EQ(s.deps[5].cause, "z");
  EXPECT_EQ(s.deps[6].cause, "c'");
  // d6 is uniform in Expansion II; d3 is not (boundary only).
  EXPECT_TRUE(s.deps[5].is_uniform());
  EXPECT_FALSE(s.deps[2].is_uniform());
  // Index set (3.13): 5-dimensional, [1,u]^3 x [1,p]^2.
  EXPECT_EQ(s.domain.dim(), 5u);
  EXPECT_EQ(s.domain.size(), 27 * 9);
}

TEST(ExpansionTest, ExpansionIHasUniformD3) {
  const auto s = core::expand(ir::kernels::matmul(2), 3, Expansion::kI);
  EXPECT_TRUE(s.deps[2].is_uniform());   // d3 (z forwarding)
  EXPECT_FALSE(s.deps[5].is_uniform());  // d6 (boundary reduction)
}

// The paper's load-balance remark: Expansion I sums at most 3 bits off
// the accumulation boundary; Expansion II sums 4-5 bits on the i1 = p
// hyperplane of every iteration.
TEST(ExpansionTest, LoadHistogramsMatchPaperRemark) {
  // Heavy (4+-input) points: Expansion I confines them to the
  // accumulation boundary j3 = u (O(u^2 p^2) of them for matmul), while
  // Expansion II puts them on the i1 = p hyperplane of every iteration
  // (O(u^3 p)); for u sufficiently larger than p, II has more.
  const auto m = ir::kernels::matmul(5);
  const auto histI = core::compute_load_histogram(core::expand(m, 3, Expansion::kI));
  const auto histII = core::compute_load_histogram(core::expand(m, 3, Expansion::kII));
  const math::Int heavyI = histI.count[4] + histI.count[5];
  const math::Int heavyII = histII.count[4] + histII.count[5];
  EXPECT_LT(heavyI, heavyII);
  // 5-input cells (needing the full s + c + c' compressor) appear once
  // p is large enough for the carry (i2 >= 2), second carry (i2 >= 3)
  // and diagonal (i2 <= p-1) inputs to overlap, i.e. p >= 4.
  const auto wide = core::expand(ir::kernels::matmul(3), 4, Expansion::kII);
  EXPECT_EQ(core::compute_load_histogram(wide).max_inputs(), 5);
}

TEST(ExpansionTest, RejectsMissingAccumulation) {
  ir::WordLevelModel m = ir::kernels::matmul(2);
  m.h3.reset();
  EXPECT_THROW(core::expand(m, 3, Expansion::kI), PreconditionError);
}

TEST(ExpansionTest, RejectsNonLexPositivePipelining) {
  ir::WordLevelModel m = ir::kernels::matmul(2);
  m.h1 = math::IntVec{0, -1, 0};
  EXPECT_THROW(core::expand(m, 3, Expansion::kI), PreconditionError);
}

}  // namespace
}  // namespace bitlevel
